//! The PigLatin-like script model: a DAG of relational operators over
//! positionally-addressed tuples, plus the in-memory reference executor.

use std::collections::HashMap;
use tez_hive::expr::Expr;
use tez_hive::plan::{compare_rows, AggExpr, AggState};
use tez_hive::types::{encode_key, Row};
use tez_hive::Catalog;

/// Join execution strategy (PigLatin's `USING` clause).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Default shuffle (reduce-side) join.
    Hash,
    /// `USING 'replicated'`: broadcast the small right side.
    Replicated,
    /// `USING 'skewed'`: sample the left side and range-partition both
    /// (paper §5.3).
    Skewed,
}

/// Handle to a relation in a script.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

/// One operator.
#[derive(Clone, Debug)]
pub enum PigOp {
    /// `LOAD 'table'`.
    Load(String),
    /// `FILTER input BY predicate`.
    Filter(Expr),
    /// `FOREACH input GENERATE exprs`.
    Foreach(Vec<Expr>),
    /// `FOREACH (GROUP input BY keys) GENERATE group, aggs` — grouping
    /// fused with aggregation, the dominant Pig idiom.
    GroupAgg {
        /// Group key columns.
        keys: Vec<usize>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// `DISTINCT input`.
    Distinct,
    /// `JOIN left BY lk, right BY rk [USING strategy]`.
    Join {
        /// Strategy.
        strategy: JoinStrategy,
        /// Left key columns.
        left_keys: Vec<usize>,
        /// Right key columns.
        right_keys: Vec<usize>,
    },
    /// `UNION inputs`.
    Union,
    /// `ORDER input BY keys [LIMIT n]` — a full total-order sort when
    /// `limit` is `None` (the sampled range-partition path).
    OrderBy {
        /// `(column, descending)` keys.
        keys: Vec<(usize, bool)>,
        /// Optional limit (top-k).
        limit: Option<usize>,
    },
    /// `STORE input INTO 'path'`.
    Store(String),
}

/// One node: operator + inputs.
#[derive(Clone, Debug)]
pub struct PigNode {
    /// The operator.
    pub op: PigOp,
    /// Input nodes.
    pub inputs: Vec<NodeId>,
}

/// A complete script: a DAG of operators with one or more stores.
#[derive(Clone, Debug)]
pub struct PigScript {
    /// Script name.
    pub name: String,
    /// Nodes, indexed by [`NodeId`].
    pub nodes: Vec<PigNode>,
}

impl PigScript {
    /// New empty script.
    pub fn new(name: impl Into<String>) -> Self {
        PigScript {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, op: PigOp, inputs: Vec<NodeId>) -> NodeId {
        self.nodes.push(PigNode { op, inputs });
        NodeId(self.nodes.len() - 1)
    }

    /// `LOAD 'table'`.
    pub fn load(&mut self, table: &str) -> NodeId {
        self.push(PigOp::Load(table.to_string()), vec![])
    }

    /// `FILTER`.
    pub fn filter(&mut self, input: NodeId, predicate: Expr) -> NodeId {
        self.push(PigOp::Filter(predicate), vec![input])
    }

    /// `FOREACH … GENERATE`.
    pub fn foreach(&mut self, input: NodeId, exprs: Vec<Expr>) -> NodeId {
        self.push(PigOp::Foreach(exprs), vec![input])
    }

    /// `GROUP … BY` + aggregation.
    pub fn group(&mut self, input: NodeId, keys: Vec<usize>, aggs: Vec<AggExpr>) -> NodeId {
        self.push(PigOp::GroupAgg { keys, aggs }, vec![input])
    }

    /// `DISTINCT`.
    pub fn distinct(&mut self, input: NodeId) -> NodeId {
        self.push(PigOp::Distinct, vec![input])
    }

    /// `JOIN`.
    pub fn join(
        &mut self,
        left: NodeId,
        right: NodeId,
        left_keys: Vec<usize>,
        right_keys: Vec<usize>,
        strategy: JoinStrategy,
    ) -> NodeId {
        self.push(
            PigOp::Join {
                strategy,
                left_keys,
                right_keys,
            },
            vec![left, right],
        )
    }

    /// `UNION`.
    pub fn union(&mut self, inputs: Vec<NodeId>) -> NodeId {
        self.push(PigOp::Union, inputs)
    }

    /// `ORDER BY` (full total order when `limit` is `None`).
    pub fn order_by(
        &mut self,
        input: NodeId,
        keys: Vec<(usize, bool)>,
        limit: Option<usize>,
    ) -> NodeId {
        self.push(PigOp::OrderBy { keys, limit }, vec![input])
    }

    /// `STORE`.
    pub fn store(&mut self, input: NodeId, path: &str) -> NodeId {
        self.push(PigOp::Store(path.to_string()), vec![input])
    }

    /// Number of consumers of each node.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.nodes.len()];
        for n in &self.nodes {
            for i in &n.inputs {
                counts[i.0] += 1;
            }
        }
        counts
    }

    /// Store nodes (script outputs).
    pub fn stores(&self) -> Vec<(NodeId, String)> {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, n)| match &n.op {
                PigOp::Store(p) => Some((NodeId(i), p.clone())),
                _ => None,
            })
            .collect()
    }

    /// Output arity (column count) of each node.
    pub fn widths(&self, catalog: &Catalog) -> Vec<usize> {
        let mut w = vec![0usize; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            w[i] = match &n.op {
                PigOp::Load(t) => catalog.schema(t).len(),
                PigOp::Filter(_) | PigOp::Distinct | PigOp::Store(_) | PigOp::OrderBy { .. } => {
                    w[n.inputs[0].0]
                }
                PigOp::Foreach(exprs) => exprs.len(),
                PigOp::GroupAgg { keys, aggs } => keys.len() + aggs.len(),
                PigOp::Join { .. } => w[n.inputs[0].0] + w[n.inputs[1].0],
                PigOp::Union => w[n.inputs[0].0],
            };
        }
        w
    }

    /// Reference execution: evaluate every node in memory, returning rows
    /// per store path.
    pub fn execute_reference(&self, catalog: &Catalog) -> HashMap<String, Vec<Row>> {
        let tables = catalog.reference_tables();
        let mut memo: Vec<Option<Vec<Row>>> = vec![None; self.nodes.len()];
        for i in 0..self.nodes.len() {
            let inputs: Vec<Vec<Row>> = self.nodes[i]
                .inputs
                .iter()
                .map(|id| memo[id.0].clone().expect("topological order"))
                .collect();
            let rows = match &self.nodes[i].op {
                PigOp::Load(t) => tables[t].clone(),
                PigOp::Filter(p) => inputs[0].iter().filter(|r| p.matches(r)).cloned().collect(),
                PigOp::Foreach(exprs) => inputs[0]
                    .iter()
                    .map(|r| exprs.iter().map(|e| e.eval(r)).collect())
                    .collect(),
                PigOp::GroupAgg { keys, aggs } => {
                    let mut groups: std::collections::BTreeMap<Vec<u8>, (Row, Vec<AggState>)> =
                        Default::default();
                    for r in &inputs[0] {
                        let key = encode_key(r, keys, &[]);
                        let entry = groups.entry(key).or_insert_with(|| {
                            (
                                keys.iter().map(|&k| r[k].clone()).collect(),
                                aggs.iter().map(AggExpr::init).collect(),
                            )
                        });
                        for (a, s) in aggs.iter().zip(entry.1.iter_mut()) {
                            a.update(s, r);
                        }
                    }
                    groups
                        .into_values()
                        .map(|(mut k, states)| {
                            k.extend(aggs.iter().zip(states).map(|(a, s)| a.finish(s)));
                            k
                        })
                        .collect()
                }
                PigOp::Distinct => {
                    let mut seen = std::collections::BTreeMap::new();
                    for r in &inputs[0] {
                        let all: Vec<usize> = (0..r.len()).collect();
                        seen.entry(encode_key(r, &all, &[]))
                            .or_insert_with(|| r.clone());
                    }
                    seen.into_values().collect()
                }
                PigOp::Join {
                    left_keys,
                    right_keys,
                    ..
                } => {
                    let mut build: HashMap<Vec<u8>, Vec<&Row>> = HashMap::new();
                    for r in &inputs[1] {
                        if right_keys.iter().any(|&k| r[k].is_null()) {
                            continue;
                        }
                        build
                            .entry(encode_key(r, right_keys, &[]))
                            .or_default()
                            .push(r);
                    }
                    let mut out = Vec::new();
                    for l in &inputs[0] {
                        if left_keys.iter().any(|&k| l[k].is_null()) {
                            continue;
                        }
                        if let Some(ms) = build.get(&encode_key(l, left_keys, &[])) {
                            for m in ms {
                                let mut row = l.clone();
                                row.extend(m.iter().cloned());
                                out.push(row);
                            }
                        }
                    }
                    out
                }
                PigOp::Union => inputs.into_iter().flatten().collect(),
                PigOp::OrderBy { keys, limit } => {
                    let mut rows = inputs[0].clone();
                    rows.sort_by(|a, b| compare_rows(a, b, keys));
                    if let Some(n) = limit {
                        rows.truncate(*n);
                    }
                    rows
                }
                PigOp::Store(_) => inputs[0].clone(),
            };
            memo[i] = Some(rows);
        }
        self.stores()
            .into_iter()
            .map(|(id, path)| (path, memo[id.0].clone().expect("evaluated")))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tez_hive::types::{ColType, Datum, Schema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_table(
            "events",
            Schema::new(vec![
                ("user", ColType::I64),
                ("kind", ColType::Str),
                ("amount", ColType::I64),
            ]),
            vec![
                vec![Datum::I64(1), Datum::str("view"), Datum::I64(3)],
                vec![Datum::I64(1), Datum::str("buy"), Datum::I64(10)],
                vec![Datum::I64(2), Datum::str("buy"), Datum::I64(7)],
                vec![Datum::I64(2), Datum::str("view"), Datum::I64(1)],
                vec![Datum::I64(1), Datum::str("buy"), Datum::I64(5)],
            ],
            1,
            None,
        );
        c
    }

    #[test]
    fn multi_store_script_reference() {
        let mut s = PigScript::new("split");
        let e = s.load("events");
        let buys = s.filter(e, Expr::col(1).eq(Expr::lit_str("buy")));
        let views = s.filter(e, Expr::col(1).eq(Expr::lit_str("view")));
        let per_user = s.group(buys, vec![0], vec![(AggExpr::Sum(Expr::col(2)))]);
        s.store(per_user, "/buys");
        s.store(views, "/views");
        assert_eq!(s.consumer_counts()[e.0], 2, "e is multi-consumed");
        let out = s.execute_reference(&catalog());
        assert_eq!(out["/views"].len(), 2);
        let buys_rows = &out["/buys"];
        assert_eq!(buys_rows.len(), 2);
        let u1 = buys_rows.iter().find(|r| r[0] == Datum::I64(1)).unwrap();
        assert_eq!(u1[1], Datum::I64(15));
    }

    #[test]
    fn distinct_union_order_reference() {
        let mut s = PigScript::new("duo");
        let e1 = s.load("events");
        let e2 = s.load("events");
        let u = s.union(vec![e1, e2]);
        let d = s.distinct(u);
        let o = s.order_by(d, vec![(2, true)], None);
        s.store(o, "/out");
        let out = s.execute_reference(&catalog());
        let rows = &out["/out"];
        assert_eq!(rows.len(), 5, "distinct removes the union duplicates");
        assert_eq!(rows[0][2], Datum::I64(10), "descending by amount");
    }

    #[test]
    fn widths_track_operators() {
        let cat = catalog();
        let mut s = PigScript::new("w");
        let e = s.load("events");
        let f = s.foreach(e, vec![Expr::col(0)]);
        let g = s.group(e, vec![0, 1], vec![AggExpr::CountStar]);
        let j = s.join(f, g, vec![0], vec![0], JoinStrategy::Hash);
        let w = s.widths(&cat);
        assert_eq!(w[e.0], 3);
        assert_eq!(w[f.0], 1);
        assert_eq!(w[g.0], 3);
        assert_eq!(w[j.0], 4);
    }
}
