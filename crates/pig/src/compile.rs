//! Compile Pig scripts to Tez DAGs and classic MapReduce job chains.
//!
//! The Tez backend (paper §5.3) exploits what MapReduce cannot express:
//! vertices with **multiple outputs** (SPLIT-style scripts), broadcast
//! (`replicated`) joins, and the **sampler → boundaries → range-partition**
//! sub-graph for `ORDER BY` and skewed joins, with the partitioner
//! installed at runtime through IPO reconfiguration.
//!
//! The MapReduce backend reproduces the historical behaviour: one job per
//! blocking operator, map chains **re-computed per consumer branch**,
//! sampling as a separate job whose histogram travels through HDFS, and
//! every intermediate materialized at replication cost.

use crate::script::{JoinStrategy, NodeId, PigOp, PigScript};
use std::collections::HashMap;
use tez_core::{hdfs_split_initializer, TezConfig};
use tez_dag::{Dag, DagBuilder, DataMovement, EdgeProperty, NamedDescriptor, UserPayload, Vertex};
use tez_hive::catalog::Catalog;
use tez_hive::physical::{BoundsSource, ExecKind, ExecOut, HiveStageProcessor, RowOp, StageExec};
use tez_runtime::ComponentRegistry;
use tez_shuffle::io::{
    broadcast_edge, kinds, one_to_one_edge, output_payload, scatter_gather_edge,
};
use tez_shuffle::{Combiner, Partitioner};

/// Pig execution options.
#[derive(Clone, Debug)]
pub struct PigOpts {
    /// Reducer count for blocking operators.
    pub reducers: usize,
    /// Sampling period for order-by/skew-join samplers (every Nth row).
    pub sample_every: usize,
    /// Declared-scale multiplier.
    pub byte_scale: f64,
}

impl Default for PigOpts {
    fn default() -> Self {
        PigOpts {
            reducers: 4,
            sample_every: 5,
            byte_scale: 1.0,
        }
    }
}

// ---------------------------------------------------------------------------
// Tez backend
// ---------------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum EdgeKind {
    Sg,
    SgUnordered,
    Broadcast,
    OneToOne,
}

struct VertexDef {
    name: String,
    kind: ExecKind,
    ops: Vec<RowOp>,
    outs: Vec<ExecOut>,
    table: Option<String>,
    parallelism: Option<usize>,
    sinks: Vec<(String, String)>,
    edges_in: Vec<(String, EdgeKind)>,
}

/// Which vertices currently carry a node's stream.
#[derive(Clone, Debug)]
enum Streams {
    One(usize),
    Many(Vec<usize>),
}

impl Streams {
    fn all(&self) -> Vec<usize> {
        match self {
            Streams::One(v) => vec![*v],
            Streams::Many(v) => v.clone(),
        }
    }
    fn single(&self, what: &str) -> usize {
        match self {
            Streams::One(v) => *v,
            Streams::Many(_) => panic!("{what} cannot consume a union directly"),
        }
    }
}

struct TezCompiler<'a> {
    script: &'a PigScript,
    opts: &'a PigOpts,
    widths: Vec<usize>,
    consumers: Vec<usize>,
    vertices: Vec<VertexDef>,
    streams: HashMap<NodeId, Streams>,
}

impl<'a> TezCompiler<'a> {
    fn new_vertex(&mut self, kind: ExecKind) -> usize {
        let id = self.vertices.len();
        self.vertices.push(VertexDef {
            name: format!("v{id}"),
            kind,
            ops: Vec::new(),
            outs: Vec::new(),
            table: None,
            parallelism: None,
            sinks: Vec::new(),
            edges_in: Vec::new(),
        });
        id
    }

    fn vname(&self, v: usize) -> String {
        self.vertices[v].name.clone()
    }

    /// Vertex carrying `node`'s stream, with a fresh branch vertex (via a
    /// one-to-one edge) when the stream is shared and the consumer needs to
    /// append operators or sampling outputs.
    fn stream_vertex_for_ops(&mut self, node: NodeId) -> usize {
        let streams = self.streams[&node].clone();
        let v = streams.single("an operator chain");
        if self.consumers[node.0] <= 1 {
            return v;
        }
        // Shared stream: branch through a one-to-one vertex so per-branch
        // operators don't leak into sibling consumers.
        let src = self.vname(v);
        let b = self.new_vertex(ExecKind::MapRows {
            inputs: vec![src.clone()],
        });
        let b_name = self.vname(b);
        self.vertices[v].outs.push(ExecOut::Rows { out: b_name });
        self.vertices[b].edges_in.push((src, EdgeKind::OneToOne));
        b
    }

    fn asc(keys: &[usize]) -> Vec<(usize, bool)> {
        keys.iter().map(|&k| (k, false)).collect()
    }

    /// Attach the sampler + range-partition sub-graph for `node`'s stream
    /// (paper §5.3). Returns the partition vertex whose `RangeShuffle`
    /// output must be aimed at the consumer.
    fn sampled_partitioner(&mut self, input: NodeId, keys: Vec<(usize, bool)>) -> usize {
        let lv = self.stream_vertex_for_ops(input);
        let lv_name = self.vname(lv);

        let sampler = self.new_vertex(ExecKind::Sampler {
            inputs: vec![lv_name.clone()],
            bounds: self.opts.reducers.saturating_sub(1).max(1),
        });
        self.vertices[sampler].parallelism = Some(1);
        let sampler_name = self.vname(sampler);
        self.vertices[lv].outs.push(ExecOut::SampleRows {
            out: sampler_name.clone(),
            keys: keys.clone(),
            every: self.opts.sample_every,
        });
        self.vertices[sampler]
            .edges_in
            .push((lv_name.clone(), EdgeKind::SgUnordered));

        let part = self.new_vertex(ExecKind::MapRows {
            inputs: vec![lv_name.clone()],
        });
        let part_name = self.vname(part);
        self.vertices[lv].outs.push(ExecOut::Rows {
            out: part_name.clone(),
        });
        self.vertices[part]
            .edges_in
            .push((lv_name, EdgeKind::OneToOne));
        self.vertices[sampler].outs.push(ExecOut::Rows {
            out: part_name.clone(),
        });
        self.vertices[part]
            .edges_in
            .push((sampler_name, EdgeKind::Broadcast));
        part
    }

    fn compile(mut self) -> Vec<VertexDef> {
        for idx in 0..self.script.nodes.len() {
            let node = NodeId(idx);
            let op = self.script.nodes[idx].op.clone();
            let inputs = self.script.nodes[idx].inputs.clone();
            match op {
                PigOp::Load(table) => {
                    let v = self.new_vertex(ExecKind::MapRows {
                        inputs: vec!["scan".into()],
                    });
                    self.vertices[v].table = Some(table);
                    self.streams.insert(node, Streams::One(v));
                }
                PigOp::Filter(p) => {
                    let v = self.stream_vertex_for_ops(inputs[0]);
                    self.vertices[v].ops.push(RowOp::Filter(p));
                    self.streams.insert(node, Streams::One(v));
                }
                PigOp::Foreach(exprs) => {
                    let v = self.stream_vertex_for_ops(inputs[0]);
                    self.vertices[v].ops.push(RowOp::Project(exprs));
                    self.streams.insert(node, Streams::One(v));
                }
                PigOp::GroupAgg { keys, aggs } => {
                    let producers = self.streams[&inputs[0]].all();
                    let agg = self.new_vertex(ExecKind::FinalAgg {
                        inputs: producers
                            .iter()
                            .map(|&p| self.vertices[p].name.clone())
                            .collect(),
                        group_cols: keys.len(),
                        aggs: aggs.clone(),
                    });
                    self.vertices[agg].parallelism = Some(self.opts.reducers);
                    let agg_name = self.vname(agg);
                    for p in producers {
                        self.vertices[p].outs.push(ExecOut::ShuffleForAgg {
                            out: agg_name.clone(),
                            group: keys.clone(),
                            aggs: aggs.clone(),
                        });
                        let pn = self.vname(p);
                        self.vertices[agg].edges_in.push((pn, EdgeKind::Sg));
                    }
                    self.streams.insert(node, Streams::One(agg));
                }
                PigOp::Distinct => {
                    let width = self.widths[inputs[0].0];
                    let producers = self.streams[&inputs[0]].all();
                    let d = self.new_vertex(ExecKind::FinalDistinct {
                        inputs: producers
                            .iter()
                            .map(|&p| self.vertices[p].name.clone())
                            .collect(),
                    });
                    self.vertices[d].parallelism = Some(self.opts.reducers);
                    let d_name = self.vname(d);
                    for p in producers {
                        self.vertices[p].outs.push(ExecOut::ShuffleRows {
                            out: d_name.clone(),
                            key_cols: (0..width).collect(),
                        });
                        let pn = self.vname(p);
                        self.vertices[d].edges_in.push((pn, EdgeKind::Sg));
                    }
                    self.streams.insert(node, Streams::One(d));
                }
                PigOp::Union => {
                    let mut vs = Vec::new();
                    for i in &inputs {
                        vs.extend(self.streams[i].all());
                    }
                    self.streams.insert(node, Streams::Many(vs));
                }
                PigOp::Join {
                    strategy: JoinStrategy::Replicated,
                    left_keys,
                    right_keys,
                } => {
                    let rv = self.streams[&inputs[1]].single("a replicated join");
                    let lv = self.stream_vertex_for_ops(inputs[0]);
                    let lv_name = self.vname(lv);
                    let rv_name = self.vname(rv);
                    self.vertices[rv].outs.push(ExecOut::Rows {
                        out: lv_name.clone(),
                    });
                    self.vertices[lv]
                        .edges_in
                        .push((rv_name.clone(), EdgeKind::Broadcast));
                    self.vertices[lv].ops.push(RowOp::MapJoin {
                        input: rv_name.clone(),
                        left_keys,
                        right_keys,
                        registry_key: format!("pig-mapjoin:{rv_name}:{lv_name}"),
                    });
                    self.streams.insert(node, Streams::One(lv));
                }
                PigOp::Join {
                    strategy,
                    left_keys,
                    right_keys,
                } => {
                    let join = self.new_vertex(ExecKind::Join {
                        left: vec![],
                        right: vec![],
                    });
                    self.vertices[join].parallelism = Some(self.opts.reducers);
                    let join_name = self.vname(join);
                    let (mut lnames, mut rnames) = (Vec::new(), Vec::new());
                    if strategy == JoinStrategy::Skewed {
                        // Sample the (skewed) left side; range-partition
                        // both sides with the same runtime boundaries.
                        let part = self.sampled_partitioner(inputs[0], Self::asc(&left_keys));
                        let part_name = self.vname(part);
                        // The sampler broadcasts into `part`.
                        let sampler_name = match &self.vertices[part].edges_in[..] {
                            [.., (s, EdgeKind::Broadcast)] => s.clone(),
                            other => panic!("partitioner edges: {other:?}"),
                        };
                        self.vertices[part].outs.push(ExecOut::RangeShuffle {
                            out: join_name.clone(),
                            keys: Self::asc(&left_keys),
                            bounds: BoundsSource::Input(sampler_name.clone()),
                        });
                        self.vertices[join]
                            .edges_in
                            .push((part_name.clone(), EdgeKind::Sg));
                        lnames.push(part_name);
                        let rv = self.stream_vertex_for_ops(inputs[1]);
                        let rv_name = self.vname(rv);
                        self.vertices[rv]
                            .edges_in
                            .push((sampler_name.clone(), EdgeKind::Broadcast));
                        // Find the sampler vertex to aim its broadcast here.
                        let sampler_idx = self
                            .vertices
                            .iter()
                            .position(|v| v.name == sampler_name)
                            .expect("sampler exists");
                        self.vertices[sampler_idx].outs.push(ExecOut::Rows {
                            out: rv_name.clone(),
                        });
                        self.vertices[rv].outs.push(ExecOut::RangeShuffle {
                            out: join_name.clone(),
                            keys: Self::asc(&right_keys),
                            bounds: BoundsSource::Input(sampler_name),
                        });
                        self.vertices[join]
                            .edges_in
                            .push((rv_name.clone(), EdgeKind::Sg));
                        rnames.push(rv_name);
                    } else {
                        for (side, keys, names) in [
                            (0usize, &left_keys, &mut lnames),
                            (1, &right_keys, &mut rnames),
                        ] {
                            for p in self.streams[&inputs[side]].all() {
                                let pn = self.vname(p);
                                self.vertices[p].outs.push(ExecOut::ShuffleRows {
                                    out: join_name.clone(),
                                    key_cols: keys.clone(),
                                });
                                self.vertices[join]
                                    .edges_in
                                    .push((pn.clone(), EdgeKind::Sg));
                                names.push(pn);
                            }
                        }
                    }
                    self.vertices[join].kind = ExecKind::Join {
                        left: lnames,
                        right: rnames,
                    };
                    self.streams.insert(node, Streams::One(join));
                }
                PigOp::OrderBy { keys, limit } => match limit {
                    Some(n) => {
                        let producers = self.streams[&inputs[0]].all();
                        let f = self.new_vertex(ExecKind::FinalOrdered {
                            inputs: producers
                                .iter()
                                .map(|&p| self.vertices[p].name.clone())
                                .collect(),
                            limit: Some(n),
                        });
                        self.vertices[f].parallelism = Some(1);
                        let f_name = self.vname(f);
                        for p in producers {
                            self.vertices[p].outs.push(ExecOut::ShuffleForTopK {
                                out: f_name.clone(),
                                keys: keys.clone(),
                                limit: n,
                            });
                            let pn = self.vname(p);
                            self.vertices[f].edges_in.push((pn, EdgeKind::Sg));
                        }
                        self.streams.insert(node, Streams::One(f));
                    }
                    None => {
                        // Full total-order sort: the paper's sampled
                        // range-partition pattern, in parallel.
                        let part = self.sampled_partitioner(inputs[0], keys.clone());
                        let part_name = self.vname(part);
                        let sampler_name = match &self.vertices[part].edges_in[..] {
                            [.., (s, EdgeKind::Broadcast)] => s.clone(),
                            _ => unreachable!(),
                        };
                        let f = self.new_vertex(ExecKind::FinalOrdered {
                            inputs: vec![part_name.clone()],
                            limit: None,
                        });
                        self.vertices[f].parallelism = Some(self.opts.reducers);
                        let f_name = self.vname(f);
                        self.vertices[part].outs.push(ExecOut::RangeShuffle {
                            out: f_name.clone(),
                            keys,
                            bounds: BoundsSource::Input(sampler_name),
                        });
                        self.vertices[f].edges_in.push((part_name, EdgeKind::Sg));
                        self.streams.insert(node, Streams::One(f));
                    }
                },
                PigOp::Store(path) => {
                    let sink_name = format!("store{idx}");
                    for p in self.streams[&inputs[0]].all() {
                        self.vertices[p].outs.push(ExecOut::Rows {
                            out: sink_name.clone(),
                        });
                        self.vertices[p]
                            .sinks
                            .push((sink_name.clone(), path.clone()));
                    }
                    self.streams.insert(node, Streams::One(0));
                }
            }
        }
        self.vertices
    }
}

fn sg_unordered_edge() -> EdgeProperty {
    EdgeProperty::new(
        DataMovement::ScatterGather,
        NamedDescriptor::with_payload(
            kinds::UNORDERED_OUT,
            output_payload(&Partitioner::Hash, Combiner::None),
        ),
        NamedDescriptor::new(kinds::UNORDERED_IN),
    )
}

/// Compile a script into one Tez DAG.
pub fn build_tez_dag(
    script: &PigScript,
    catalog: &Catalog,
    opts: &PigOpts,
    registry: &mut ComponentRegistry,
    config: &TezConfig,
) -> Dag {
    let compiler = TezCompiler {
        script,
        opts,
        widths: script.widths(catalog),
        consumers: script.consumer_counts(),
        vertices: Vec::new(),
        streams: HashMap::new(),
    };
    let vertices = compiler.compile();

    let mut builder = DagBuilder::new(&script.name);
    for v in &vertices {
        let exec = StageExec {
            kind: v.kind.clone(),
            ops: v.ops.clone(),
            outs: v.outs.clone(),
        };
        let kind_name = format!("pig.{}.{}", script.name, v.name);
        registry.register_processor(&kind_name, move |_p| {
            Box::new(HiveStageProcessor::new(exec.clone()))
        });
        let mut vertex = Vertex::new(&v.name, NamedDescriptor::new(&kind_name));
        if let Some(n) = v.parallelism {
            vertex = vertex.with_parallelism(n);
        }
        if let Some(table) = &v.table {
            vertex = vertex.with_data_source(
                "scan",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer(
                    &Catalog::table_path(table),
                    config.min_split_bytes,
                    config.max_split_bytes,
                    false,
                )),
            );
            if let Some(pin) = catalog.scale_override(table) {
                vertex = vertex.with_stats_scale(pin);
            }
        }
        for (sink_name, path) in &v.sinks {
            vertex = vertex.with_data_sink(
                sink_name,
                NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str(path)),
                Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
            );
        }
        builder = builder.add_vertex(vertex);
    }
    for v in &vertices {
        for (src, kind) in &v.edges_in {
            let prop = match kind {
                EdgeKind::Sg => scatter_gather_edge(Combiner::None),
                EdgeKind::SgUnordered => sg_unordered_edge(),
                EdgeKind::Broadcast => broadcast_edge(),
                EdgeKind::OneToOne => one_to_one_edge(),
            };
            builder = builder.add_edge(src.clone(), v.name.clone(), prop);
        }
    }
    builder.build().expect("pig script compiles to a valid DAG")
}

// ---------------------------------------------------------------------------
// MapReduce backend
// ---------------------------------------------------------------------------

/// A map input for one MR job: source path + recomputed chain ops.
struct MapChain {
    source: String,
    ops: Vec<RowOp>,
    pin: Option<f64>,
}

/// Walk up from `node` through non-blocking operators, re-collecting the
/// chain ops (the paper's MR "workaround": shared chains are recomputed per
/// consumer). Returns one chain per union branch.
fn map_chains(script: &PigScript, node: NodeId, temp: &dyn Fn(usize) -> String) -> Vec<MapChain> {
    let n = &script.nodes[node.0];
    match &n.op {
        PigOp::Load(t) => vec![MapChain {
            source: Catalog::table_path(t),
            ops: vec![],
            pin: None,
        }],
        PigOp::Filter(p) => {
            let mut chains = map_chains(script, n.inputs[0], temp);
            for c in &mut chains {
                c.ops.push(RowOp::Filter(p.clone()));
            }
            chains
        }
        PigOp::Foreach(exprs) => {
            let mut chains = map_chains(script, n.inputs[0], temp);
            for c in &mut chains {
                c.ops.push(RowOp::Project(exprs.clone()));
            }
            chains
        }
        PigOp::Union => n
            .inputs
            .iter()
            .flat_map(|i| map_chains(script, *i, temp))
            .collect(),
        // Blocking producers were materialized by their own job.
        _ => vec![MapChain {
            source: temp(node.0),
            ops: vec![],
            pin: None,
        }],
    }
}

struct MrJobSpec {
    name: String,
    maps: Vec<(String, MapChain, ExecOut)>,
    reduce: Option<(ExecKind, Vec<RowOp>, usize)>,
    sink_path: String,
}

fn build_job(spec: MrJobSpec, registry: &mut ComponentRegistry, config: &TezConfig) -> Dag {
    let mut builder = DagBuilder::new(&spec.name);
    let mut map_names = Vec::new();
    for (mname, chain, out) in spec.maps {
        let exec = StageExec {
            kind: ExecKind::MapRows {
                inputs: vec!["scan".into()],
            },
            ops: chain.ops,
            outs: vec![out],
        };
        let kind_name = format!("pig.{}.{mname}", spec.name);
        registry.register_processor(&kind_name, move |_p| {
            Box::new(HiveStageProcessor::new(exec.clone()))
        });
        let pin = chain.pin;
        let mut vertex = Vertex::new(&mname, NamedDescriptor::new(&kind_name)).with_data_source(
            "scan",
            NamedDescriptor::new(kinds::DFS_IN),
            Some(hdfs_split_initializer(
                &chain.source,
                config.min_split_bytes,
                config.max_split_bytes,
                false,
            )),
        );
        if let Some(pin) = pin {
            vertex = vertex.with_stats_scale(pin);
        }
        if spec.reduce.is_none() {
            vertex = vertex.with_data_sink(
                "out",
                NamedDescriptor::with_payload(
                    kinds::DFS_OUT,
                    UserPayload::from_str(&spec.sink_path),
                ),
                Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
            );
        }
        builder = builder.add_vertex(vertex);
        map_names.push(mname);
    }
    if let Some((kind, ops, parallelism)) = spec.reduce {
        let exec = StageExec {
            kind,
            ops,
            outs: vec![ExecOut::Rows { out: "out".into() }],
        };
        let kind_name = format!("pig.{}.r", spec.name);
        registry.register_processor(&kind_name, move |_p| {
            Box::new(HiveStageProcessor::new(exec.clone()))
        });
        builder = builder.add_vertex(
            Vertex::new("r", NamedDescriptor::new(&kind_name))
                .with_parallelism(parallelism)
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(
                        kinds::DFS_OUT,
                        UserPayload::from_str(&spec.sink_path),
                    ),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        );
        for m in &map_names {
            builder = builder.add_edge(m.clone(), "r", scatter_gather_edge(Combiner::None));
        }
    }
    builder.build().expect("mr job compiles")
}

/// Compile a script into a chain of MapReduce jobs.
pub fn build_mr_dags(
    script: &PigScript,
    catalog: &Catalog,
    opts: &PigOpts,
    registry: &mut ComponentRegistry,
    config: &TezConfig,
) -> Vec<Dag> {
    let widths = script.widths(catalog);
    let sname = script.name.clone();
    let temp = move |n: usize| format!("/tmp/{sname}/n{n}");
    let mut dags = Vec::new();
    let mut job = 0usize;
    let next_job_name = |job: &mut usize| {
        let n = format!("{}-job{}", script.name, *job);
        *job += 1;
        n
    };
    let consumers = script.consumer_counts();

    // A blocking node writes straight to its store path when its single
    // consumer is that store.
    let sink_for = |node: usize| -> String {
        let only_store = consumers[node] == 1
            && script.nodes.iter().any(|n| {
                matches!(&n.op, PigOp::Store(_)) && n.inputs.first() == Some(&NodeId(node))
            });
        if only_store {
            script
                .nodes
                .iter()
                .find_map(|n| match &n.op {
                    PigOp::Store(p) if n.inputs.first() == Some(&NodeId(node)) => Some(p.clone()),
                    _ => None,
                })
                .expect("store found")
        } else {
            temp(node)
        }
    };

    for (idx, n) in script.nodes.iter().enumerate() {
        match &n.op {
            PigOp::GroupAgg { keys, aggs } => {
                let chains = map_chains(script, n.inputs[0], &temp);
                let maps: Vec<(String, MapChain, ExecOut)> = chains
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| {
                        (
                            format!("m{i}"),
                            c,
                            ExecOut::ShuffleForAgg {
                                out: "r".into(),
                                group: keys.clone(),
                                aggs: aggs.clone(),
                            },
                        )
                    })
                    .collect();
                let inputs = maps.iter().map(|(m, _, _)| m.clone()).collect();
                dags.push(build_job(
                    MrJobSpec {
                        name: next_job_name(&mut job),
                        maps,
                        reduce: Some((
                            ExecKind::FinalAgg {
                                inputs,
                                group_cols: keys.len(),
                                aggs: aggs.clone(),
                            },
                            vec![],
                            opts.reducers,
                        )),
                        sink_path: sink_for(idx),
                    },
                    registry,
                    config,
                ));
            }
            PigOp::Distinct => {
                let width = widths[n.inputs[0].0];
                let chains = map_chains(script, n.inputs[0], &temp);
                let maps: Vec<(String, MapChain, ExecOut)> = chains
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| {
                        (
                            format!("m{i}"),
                            c,
                            ExecOut::ShuffleRows {
                                out: "r".into(),
                                key_cols: (0..width).collect(),
                            },
                        )
                    })
                    .collect();
                let inputs = maps.iter().map(|(m, _, _)| m.clone()).collect();
                dags.push(build_job(
                    MrJobSpec {
                        name: next_job_name(&mut job),
                        maps,
                        reduce: Some((ExecKind::FinalDistinct { inputs }, vec![], opts.reducers)),
                        sink_path: sink_for(idx),
                    },
                    registry,
                    config,
                ));
            }
            PigOp::Join {
                strategy,
                left_keys,
                right_keys,
            } => {
                let bounds_path = format!("{}.bounds", temp(idx));
                if *strategy == JoinStrategy::Skewed {
                    // Job A: sample the left side; single reducer computes
                    // the histogram, materialized to HDFS (paper §5.3's
                    // historical workflow).
                    let chains = map_chains(script, n.inputs[0], &temp);
                    let maps: Vec<(String, MapChain, ExecOut)> = chains
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| {
                            (
                                format!("m{i}"),
                                c,
                                ExecOut::SampleRows {
                                    out: "r".into(),
                                    keys: left_keys.iter().map(|&k| (k, false)).collect(),
                                    every: opts.sample_every,
                                },
                            )
                        })
                        .collect();
                    let inputs = maps.iter().map(|(m, _, _)| m.clone()).collect();
                    dags.push(build_job(
                        MrJobSpec {
                            name: next_job_name(&mut job),
                            maps,
                            reduce: Some((
                                ExecKind::Sampler {
                                    inputs,
                                    bounds: opts.reducers.saturating_sub(1).max(1),
                                },
                                vec![],
                                1,
                            )),
                            sink_path: bounds_path.clone(),
                        },
                        registry,
                        config,
                    ));
                }
                // Join job: left chains + right chains.
                let mut maps = Vec::new();
                let (mut lnames, mut rnames) = (Vec::new(), Vec::new());
                for (side, keys, names) in [
                    (0usize, left_keys, &mut lnames),
                    (1, right_keys, &mut rnames),
                ] {
                    for c in map_chains(script, n.inputs[side], &temp) {
                        let mname = format!("m{}", maps.len());
                        let out = if *strategy == JoinStrategy::Skewed {
                            ExecOut::RangeShuffle {
                                out: "r".into(),
                                keys: keys.iter().map(|&k| (k, false)).collect(),
                                bounds: BoundsSource::DfsFile(bounds_path.clone()),
                            }
                        } else {
                            ExecOut::ShuffleRows {
                                out: "r".into(),
                                key_cols: keys.clone(),
                            }
                        };
                        names.push(mname.clone());
                        maps.push((mname, c, out));
                    }
                }
                dags.push(build_job(
                    MrJobSpec {
                        name: next_job_name(&mut job),
                        maps,
                        reduce: Some((
                            ExecKind::Join {
                                left: lnames,
                                right: rnames,
                            },
                            vec![],
                            opts.reducers,
                        )),
                        sink_path: sink_for(idx),
                    },
                    registry,
                    config,
                ));
            }
            PigOp::OrderBy { keys, limit } => {
                if limit.is_none() {
                    // Sample job first (histogram through HDFS).
                    let bounds_path = format!("{}.bounds", temp(idx));
                    let chains = map_chains(script, n.inputs[0], &temp);
                    let maps: Vec<(String, MapChain, ExecOut)> = chains
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| {
                            (
                                format!("m{i}"),
                                c,
                                ExecOut::SampleRows {
                                    out: "r".into(),
                                    keys: keys.clone(),
                                    every: opts.sample_every,
                                },
                            )
                        })
                        .collect();
                    let inputs = maps.iter().map(|(m, _, _)| m.clone()).collect();
                    dags.push(build_job(
                        MrJobSpec {
                            name: next_job_name(&mut job),
                            maps,
                            reduce: Some((
                                ExecKind::Sampler {
                                    inputs,
                                    bounds: opts.reducers.saturating_sub(1).max(1),
                                },
                                vec![],
                                1,
                            )),
                            sink_path: bounds_path.clone(),
                        },
                        registry,
                        config,
                    ));
                    // Sort job re-computes the chains (the MR workaround).
                    let chains = map_chains(script, n.inputs[0], &temp);
                    let maps: Vec<(String, MapChain, ExecOut)> = chains
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| {
                            (
                                format!("m{i}"),
                                c,
                                ExecOut::RangeShuffle {
                                    out: "r".into(),
                                    keys: keys.clone(),
                                    bounds: BoundsSource::DfsFile(bounds_path.clone()),
                                },
                            )
                        })
                        .collect();
                    let inputs: Vec<String> = maps.iter().map(|(m, _, _)| m.clone()).collect();
                    dags.push(build_job(
                        MrJobSpec {
                            name: next_job_name(&mut job),
                            maps,
                            reduce: Some((
                                ExecKind::FinalOrdered {
                                    inputs,
                                    limit: None,
                                },
                                vec![],
                                opts.reducers,
                            )),
                            sink_path: sink_for(idx),
                        },
                        registry,
                        config,
                    ));
                } else {
                    let chains = map_chains(script, n.inputs[0], &temp);
                    let maps: Vec<(String, MapChain, ExecOut)> = chains
                        .into_iter()
                        .enumerate()
                        .map(|(i, c)| {
                            (
                                format!("m{i}"),
                                c,
                                ExecOut::ShuffleForTopK {
                                    out: "r".into(),
                                    keys: keys.clone(),
                                    limit: limit.unwrap(),
                                },
                            )
                        })
                        .collect();
                    let inputs = maps.iter().map(|(m, _, _)| m.clone()).collect();
                    dags.push(build_job(
                        MrJobSpec {
                            name: next_job_name(&mut job),
                            maps,
                            reduce: Some((
                                ExecKind::FinalOrdered {
                                    inputs,
                                    limit: *limit,
                                },
                                vec![],
                                1,
                            )),
                            sink_path: sink_for(idx),
                        },
                        registry,
                        config,
                    ));
                }
            }
            PigOp::Store(path) => {
                let input = n.inputs[0];
                let blocking = !matches!(
                    script.nodes[input.0].op,
                    PigOp::Load(_) | PigOp::Filter(_) | PigOp::Foreach(_) | PigOp::Union
                );
                if blocking && consumers[input.0] == 1 {
                    continue; // the blocking job already wrote here
                }
                // Map-only copy job (re-computing the chain).
                let chains = map_chains(script, input, &temp);
                let maps: Vec<(String, MapChain, ExecOut)> = chains
                    .into_iter()
                    .enumerate()
                    .map(|(i, c)| (format!("m{i}"), c, ExecOut::Rows { out: "out".into() }))
                    .collect();
                dags.push(build_job(
                    MrJobSpec {
                        name: next_job_name(&mut job),
                        maps,
                        reduce: None,
                        sink_path: path.clone(),
                    },
                    registry,
                    config,
                ));
            }
            PigOp::Load(_) | PigOp::Filter(_) | PigOp::Foreach(_) | PigOp::Union => {}
        }
    }
    dags
}

/// MR rewrite: replicated joins degrade to shuffle joins.
pub fn rewrite_for_mr(script: &PigScript) -> PigScript {
    let mut s = script.clone();
    for n in &mut s.nodes {
        if let PigOp::Join { strategy, .. } = &mut n.op {
            if *strategy == JoinStrategy::Replicated {
                *strategy = JoinStrategy::Hash;
            }
        }
    }
    s
}
