//! Iterative processing in a Tez session (paper §4.2, Figure 11): each
//! K-means iteration is a new DAG submitted to a shared, pre-warmed
//! session, so containers and the cached point set survive iterations.
//!
//! ```text
//! cargo run -p tez-examples --bin session_iteration
//! ```

use tez_core::{TezClient, TezConfig};
use tez_examples::header;
use tez_pig::kmeans::{generate_points, run_kmeans};
use tez_yarn::ClusterSpec;

fn main() {
    let points = generate_points(5_000, 3, 5);
    let client = TezClient::new(ClusterSpec::homogeneous(1, 4096, 4));
    let iterations = 8;

    header("K-means in a pre-warmed Tez session");
    let session = TezConfig {
        session: true,
        prewarm_containers: 2,
        ..TezConfig::default()
    };
    let tez = run_kmeans(&client, &points, 3, iterations, session, 4);
    for (i, r) in tez.reports.iter().enumerate() {
        println!(
            "  iteration {:>2}: {:>6.2}s  ({} new containers, {} warm starts)",
            i,
            r.runtime_ms() as f64 / 1000.0,
            r.containers_allocated,
            r.warm_starts
        );
    }
    println!(
        "  total: {:.1}s, centroids: {:?}",
        tez.total_ms as f64 / 1000.0,
        tez.centroids
    );

    header("same job as a classic MapReduce chain");
    let mr = run_kmeans(
        &client,
        &points,
        3,
        iterations,
        TezConfig::mapreduce_baseline(),
        4,
    );
    println!(
        "  total: {:.1}s  — {:.1}x slower (per-job AM launch, cold containers)",
        mr.total_ms as f64 / 1000.0,
        mr.total_ms as f64 / tez.total_ms.max(1) as f64
    );
}
