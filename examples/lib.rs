//! Shared helpers for the runnable examples.

/// Print a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}
