//! The Spark-on-Tez prototype (paper §5.4): an RDD pipeline with closures,
//! compiled to a Tez DAG and executed without any Spark service running.
//!
//! ```text
//! cargo run -p tez-examples --bin spark_rdd
//! ```

use tez_examples::header;
use tez_hive::types::Datum;
use tez_spark::tenancy::{run_tenancy, ExecutionModel, TenancySpec};
use tez_spark::Rdd;
use tez_yarn::{ClusterSpec, CostModel};

fn main() {
    header("RDD lineage → Tez DAG");
    let rdd = Rdd::from_table("lineitem")
        .filter(|r| r[1].as_i64() > 10)
        .map(|mut r| {
            r.push(Datum::I64(1));
            r
        })
        .partition_by(8, |r| tez_hive::types::encode_key(r, &[0], &[]));
    println!(
        "lineage: table scan → filter → map → partitionBy  ⇒  {} Tez stages",
        rdd.num_stages()
    );

    header("multi-tenant execution (paper §6.5)");
    let spec = TenancySpec {
        cluster: ClusterSpec::homogeneous(2, 8192, 8),
        cost: CostModel {
            straggler_prob: 0.0,
            ..CostModel::default()
        },
        users: 3,
        rows: 600,
        blocks: 8,
        partitions: 2,
        byte_scale: 50_000.0,
        stagger_ms: 2_000,
        seed: 9,
    };
    let service = run_tenancy(&spec, ExecutionModel::ServiceBased { executors: 8 });
    let tez = run_tenancy(&spec, ExecutionModel::TezBased);
    println!(
        "service-executor model: per-app latencies {:?} ms",
        service.latencies_ms()
    );
    println!(
        "tez (ephemeral) model:  per-app latencies {:?} ms",
        tez.latencies_ms()
    );
    println!(
        "mean: service {:.1}s vs tez {:.1}s — Tez releases idle resources to other tenants",
        service.mean_latency_ms() / 1000.0,
        tez.mean_latency_ms() / 1000.0
    );
}
