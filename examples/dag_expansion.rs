//! Figure 2 of the paper: expansion of a logical DAG into the physical
//! task DAG based on vertex parallelism and edge properties.
//!
//! ```text
//! cargo run -p tez-examples --bin dag_expansion
//! ```

use std::collections::HashMap;
use tez_dag::{expand, DagBuilder, DataMovement, EdgeProperty, NamedDescriptor, Vertex};
use tez_examples::header;

fn main() {
    let prop = |m| {
        EdgeProperty::new(
            m,
            NamedDescriptor::new("Output"),
            NamedDescriptor::new("Input"),
        )
    };
    // The paper's example: two filters and an aggregation feeding a join.
    let dag = DagBuilder::new("figure2")
        .add_vertex(
            Vertex::new("filter1", NamedDescriptor::new("FilterProcessor")).with_parallelism(3),
        )
        .add_vertex(
            Vertex::new("filter2", NamedDescriptor::new("FilterProcessor")).with_parallelism(3),
        )
        .add_vertex(Vertex::new("agg", NamedDescriptor::new("AggProcessor")).with_parallelism(3))
        .add_vertex(Vertex::new("join", NamedDescriptor::new("JoinProcessor")).with_parallelism(2))
        .add_edge("filter1", "agg", prop(DataMovement::OneToOne))
        .add_edge("agg", "join", prop(DataMovement::ScatterGather))
        .add_edge("filter2", "join", prop(DataMovement::ScatterGather))
        .build()
        .expect("valid DAG");

    header("logical DAG");
    print!("{}", dag.to_dot());

    header("physical task DAG (one-to-one + scatter-gather expansion)");
    let phys = expand(&dag, &[3, 3, 3, 2], &HashMap::new()).expect("built-in edges only");
    print!("{}", phys.to_dot(&dag));
    println!(
        "\n{} logical vertices expand into {} tasks connected by {} physical transfers",
        dag.num_vertices(),
        phys.num_tasks(),
        phys.transfers.len()
    );
    for vi in 0..dag.num_vertices() {
        println!(
            "  {}: depth {} (scheduling priority)",
            dag.vertex(vi).name,
            dag.depth(vi)
        );
    }
}
