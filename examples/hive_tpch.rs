//! Run a TPC-H derived Hive query on both backends and compare: the same
//! operator pipeline, compiled once into a single Tez DAG and once into a
//! chain of MapReduce jobs (paper §5.2, §6.2).
//!
//! ```text
//! cargo run -p tez-examples --bin hive_tpch
//! ```

use tez_core::TezClient;
use tez_examples::header;
use tez_hive::{tpch, HiveEngine, HiveOpts};
use tez_yarn::ClusterSpec;

fn main() {
    let engine = HiveEngine::new(tpch::generate(1_000, 8, 7));
    let client = TezClient::new(ClusterSpec::homogeneous(6, 8192, 8));
    let opts = HiveOpts {
        byte_scale: 200_000.0, // charge the MB-scale data as multi-TB
        ..HiveOpts::default()
    };

    let (name, q) = tpch::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q3")
        .expect("q3 in suite");
    header(&format!("TPC-H derived {name} (shipping priority)"));

    let tez = engine.run_tez(&client, name, &q.plan, &opts);
    let mr = engine.run_mr(&client, name, &q.plan, &opts);
    assert!(tez.success() && mr.success());

    println!("columns: {:?}", q.cols);
    for row in tez.rows.iter().take(5) {
        let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
        println!("  {}", cells.join(" | "));
    }
    println!("…{} rows total", tez.rows.len());

    header("unified run report (tez)");
    let rr = &tez.reports.last().unwrap().run_report;
    print!("{}", rr.render_table());
    println!("json: {} bytes, deterministic", rr.to_json().len());

    header("critical path (tez)");
    match rr.critical_path() {
        Some(cp) => print!("{}", cp.render_table()),
        None => println!("no succeeded attempts to analyze"),
    }

    header("vertex progress (tez, mid-run snapshot)");
    let mid_ms = (rr.submitted_ms + rr.finished_ms) / 2;
    print!(
        "{}",
        tez_runtime::render_progress(&tez_runtime::progress_at(rr, mid_ms), 30)
    );

    // The ATS-style history store answers entity queries over the run:
    // here, every vertex of this DAG with its related task attempts.
    header("history query (tez)");
    let history = tez_runtime::HistoryStore::from_reports([rr]);
    let vertices = history
        .query()
        .entity_type(tez_runtime::entity_types::VERTEX)
        .filter("dag", &rr.dag)
        .run();
    for v in vertices {
        let attempts = v
            .related(tez_runtime::entity_types::ATTEMPT)
            .map(|s| s.len())
            .unwrap_or(0);
        println!(
            "{}: {} related attempts, [{} ms, {} ms]",
            v.entity_id, attempts, v.start_time_ms, v.end_time_ms
        );
    }

    header("backends");
    println!(
        "tez: one DAG,      {:>8.1}s",
        tez.runtime_ms() as f64 / 1000.0
    );
    println!(
        "mr : {} jobs chained, {:>8.1}s  ({:.1}x slower)",
        mr.reports.len(),
        mr.runtime_ms() as f64 / 1000.0,
        mr.runtime_ms() as f64 / tez.runtime_ms().max(1) as f64
    );
    assert_eq!(tez.rows.len(), mr.rows.len(), "backends must agree");
}
