//! A multi-output Pig ETL script (paper §5.3): one scan feeding two
//! grouped reports through a replicated join — a single Tez DAG with
//! multi-output vertices vs a chain of MapReduce jobs with re-reads.
//!
//! ```text
//! cargo run -p tez-examples --bin pig_etl
//! ```

use tez_core::TezClient;
use tez_examples::header;
use tez_pig::workloads::{event_catalog, production_scripts};
use tez_pig::{PigEngine, PigOpts};
use tez_yarn::ClusterSpec;

fn main() {
    let engine = PigEngine::new(event_catalog(500, 4, 7));
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8));
    let opts = PigOpts {
        byte_scale: 150_000.0,
        ..PigOpts::default()
    };

    let (name, script) = production_scripts()
        .into_iter()
        .find(|(n, _)| *n == "session_enrich")
        .expect("script exists");
    header(&format!("Pig script {name:?} (two stores from one stream)"));

    let tez = engine.run_tez(&client, &script, &opts);
    let mr = engine.run_mr(&client, &script, &opts);
    assert!(tez.success() && mr.success());

    for (path, rows) in &tez.outputs {
        println!("{path}: {} rows", rows.len());
        for row in rows.iter().take(3) {
            let cells: Vec<String> = row.iter().map(|d| d.to_string()).collect();
            println!("    {}", cells.join(" | "));
        }
    }

    header("critical path (tez)");
    match tez.reports.last().unwrap().run_report.critical_path() {
        Some(cp) => print!("{}", cp.render_table()),
        None => println!("no succeeded attempts to analyze"),
    }

    header("backends");
    println!(
        "tez: 1 DAG ({} vertices implied), {:>7.1}s",
        tez.reports[0].vertices.len(),
        tez.runtime_ms() as f64 / 1000.0
    );
    println!(
        "mr : {} jobs, {:>7.1}s  ({:.1}x slower — shared stream recomputed per branch)",
        mr.reports.len(),
        mr.runtime_ms() as f64 / 1000.0,
        mr.runtime_ms() as f64 / tez.runtime_ms().max(1) as f64
    );
}
