//! Quickstart: the canonical WordCount DAG from Figure 4 of the paper,
//! executed end-to-end on a simulated 4-node cluster.
//!
//! ```text
//! cargo run -p tez-examples --bin quickstart
//! ```

use bytes::Bytes;
use tez_core::{hdfs_split_initializer, standard_registry, TezClient, TezConfig};
use tez_dag::{DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_examples::header;
use tez_runtime::{Dfs, Processor, ProcessorContext, TaskError};
use tez_shuffle::codec::{encode_kv, KvCursor};
use tez_shuffle::io::{kinds, scatter_gather_edge};
use tez_shuffle::Combiner;
use tez_yarn::ClusterSpec;

/// Splits lines into words, emitting `(word, 1)`.
struct TokenProcessor;
impl Processor for TokenProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader("in")?.into_kv()?;
        let mut words = Vec::new();
        while let Some((_, line)) = reader.next() {
            for w in String::from_utf8_lossy(&line).split_whitespace() {
                words.push(w.to_string());
            }
        }
        for w in words {
            ctx.write("summer", w.as_bytes(), &1u64.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Sums the counts per word.
struct SumProcessor;
impl Processor for SumProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader("tokenizer")?.into_grouped()?;
        let mut out = Vec::new();
        while let Some(g) = reader.next_group() {
            let total: u64 = g
                .values
                .iter()
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .sum();
            out.push((g.key, total));
        }
        for (k, total) in out {
            ctx.write("out", &k, total.to_string().as_bytes())?;
        }
        Ok(())
    }
}

fn main() {
    header("WordCount on rtez (paper Figure 4)");

    // 1. Register the application's processors alongside the built-ins.
    let mut registry = standard_registry();
    registry.register_processor("TokenProcessor", |_| Box::new(TokenProcessor));
    registry.register_processor("SumProcessor", |_| Box::new(SumProcessor));

    // 2. Describe the computation with the DAG API: a tokenizer vertex
    //    whose parallelism comes from split calculation, a scatter-gather
    //    edge with a sum combiner, and a summer vertex writing the sink.
    let dag = DagBuilder::new("wordcount")
        .add_vertex(
            Vertex::new("tokenizer", NamedDescriptor::new("TokenProcessor")).with_data_source(
                "in",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer("/input/text", 1, 1 << 30, false)),
            ),
        )
        .add_vertex(
            Vertex::new("summer", NamedDescriptor::new("SumProcessor"))
                .with_parallelism(2)
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str("/output")),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        )
        .add_edge("tokenizer", "summer", scatter_gather_edge(Combiner::SumU64))
        .build()
        .expect("valid DAG");
    println!("{}", dag.to_dot());

    // 3. Run it on a simulated 4-node cluster.
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8));
    let run = client.run_dag(dag, registry, TezConfig::default(), |hdfs| {
        let lines = [
            "to be or not to be",
            "that is the question",
            "whether tis nobler to suffer",
        ];
        let blocks = lines
            .iter()
            .map(|l| {
                let mut buf = Vec::new();
                encode_kv(&mut buf, b"", l.as_bytes());
                (Bytes::from(buf), 1u64)
            })
            .collect();
        hdfs.put_file("/input/text", blocks);
    });

    let report = run.report();
    println!(
        "status: {:?}, runtime {:.1}s, {} containers, {} warm starts",
        report.status,
        report.runtime_s(),
        report.containers_allocated,
        report.warm_starts
    );
    println!("counters:\n{}", report.counters);

    header("word counts");
    for b in run.hdfs().list_blocks("/output").expect("committed") {
        let data = run.hdfs().read_block("/output", b.index).unwrap();
        let mut c = KvCursor::new(data);
        while let Some((k, v)) = c.next() {
            println!(
                "{:>10} {}",
                String::from_utf8_lossy(&v),
                String::from_utf8_lossy(&k)
            );
        }
    }

    header("critical path");
    let rr = &report.run_report;
    match rr.critical_path() {
        Some(cp) => print!("{}", cp.render_table()),
        None => println!("no succeeded attempts to analyze"),
    }

    // 4. Per-vertex progress, reconstructed from the timeline: a snapshot
    //    mid-run (tasks still in flight) and at completion.
    header("vertex progress");
    let mid_ms = (rr.submitted_ms + rr.finished_ms) / 2;
    println!("at t={mid_ms} ms:");
    print!(
        "{}",
        tez_runtime::render_progress(&tez_runtime::progress_at(rr, mid_ms), 30)
    );
    println!("at t={} ms (finish):", rr.finished_ms);
    print!(
        "{}",
        tez_runtime::render_progress(&tez_runtime::progress_at(rr, rr.finished_ms), 30)
    );

    // 5. Optionally export run artifacts (CI uploads these): the full run
    //    report JSON, a Chrome trace openable in Perfetto, the metrics
    //    registry (JSON + Prometheus text exposition), and the ATS-style
    //    history entity store.
    if let Ok(dir) = std::env::var("TEZ_ARTIFACTS_DIR") {
        std::fs::create_dir_all(&dir).expect("create artifacts dir");
        let report_path = format!("{dir}/quickstart-run-report.json");
        std::fs::write(&report_path, rr.to_json()).expect("write run report");
        let trace_path = format!("{dir}/quickstart-chrome-trace.json");
        std::fs::write(&trace_path, tez_runtime::chrome_trace(&[rr])).expect("write chrome trace");
        let metrics_path = format!("{dir}/quickstart-metrics.json");
        std::fs::write(&metrics_path, run.metrics.to_json()).expect("write metrics");
        let prom_path = format!("{dir}/quickstart-metrics.prom");
        std::fs::write(&prom_path, run.metrics.to_prometheus()).expect("write prometheus");
        let history_path = format!("{dir}/quickstart-history.json");
        std::fs::write(&history_path, run.history().to_json()).expect("write history");
        println!(
            "artifacts: {report_path}, {trace_path}, {metrics_path}, {prom_path}, {history_path}"
        );
    }
}
