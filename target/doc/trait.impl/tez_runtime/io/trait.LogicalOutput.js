(function() {
    const implementors = Object.fromEntries([["tez_shuffle",[["impl LogicalOutput for <a class=\"struct\" href=\"tez_shuffle/io/struct.DfsOutput.html\" title=\"struct tez_shuffle::io::DfsOutput\">DfsOutput</a>",0],["impl LogicalOutput for <a class=\"struct\" href=\"tez_shuffle/io/struct.OrderedPartitionedKvOutput.html\" title=\"struct tez_shuffle::io::OrderedPartitionedKvOutput\">OrderedPartitionedKvOutput</a>",0],["impl LogicalOutput for <a class=\"struct\" href=\"tez_shuffle/io/struct.UnorderedKvOutput.html\" title=\"struct tez_shuffle::io::UnorderedKvOutput\">UnorderedKvOutput</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[551]}