(function() {
    const implementors = Object.fromEntries([["tez_shuffle",[["impl LogicalInput for <a class=\"struct\" href=\"tez_shuffle/io/struct.DfsInput.html\" title=\"struct tez_shuffle::io::DfsInput\">DfsInput</a>",0],["impl LogicalInput for <a class=\"struct\" href=\"tez_shuffle/io/struct.ShuffledMergedKvInput.html\" title=\"struct tez_shuffle::io::ShuffledMergedKvInput\">ShuffledMergedKvInput</a>",0],["impl LogicalInput for <a class=\"struct\" href=\"tez_shuffle/io/struct.UnorderedKvInput.html\" title=\"struct tez_shuffle::io::UnorderedKvInput\">UnorderedKvInput</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[527]}