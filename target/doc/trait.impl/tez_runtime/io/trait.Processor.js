(function() {
    const implementors = Object.fromEntries([["quickstart",[["impl Processor for <a class=\"struct\" href=\"quickstart/struct.SumProcessor.html\" title=\"struct quickstart::SumProcessor\">SumProcessor</a>",0],["impl Processor for <a class=\"struct\" href=\"quickstart/struct.TokenProcessor.html\" title=\"struct quickstart::TokenProcessor\">TokenProcessor</a>",0]]],["tez_hive",[["impl Processor for <a class=\"struct\" href=\"tez_hive/physical/struct.HiveStageProcessor.html\" title=\"struct tez_hive::physical::HiveStageProcessor\">HiveStageProcessor</a>",0]]],["tez_mapreduce",[["impl Processor for <a class=\"struct\" href=\"tez_mapreduce/struct.MapProcessor.html\" title=\"struct tez_mapreduce::MapProcessor\">MapProcessor</a>",0],["impl Processor for <a class=\"struct\" href=\"tez_mapreduce/struct.ReduceProcessor.html\" title=\"struct tez_mapreduce::ReduceProcessor\">ReduceProcessor</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[320,197,339]}