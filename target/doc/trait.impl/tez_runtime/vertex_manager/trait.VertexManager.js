(function() {
    const implementors = Object.fromEntries([["tez_core",[["impl VertexManager for <a class=\"struct\" href=\"tez_core/vertex_managers/struct.ImmediateStartVertexManager.html\" title=\"struct tez_core::vertex_managers::ImmediateStartVertexManager\">ImmediateStartVertexManager</a>",0],["impl VertexManager for <a class=\"struct\" href=\"tez_core/vertex_managers/struct.OneToOneVertexManager.html\" title=\"struct tez_core::vertex_managers::OneToOneVertexManager\">OneToOneVertexManager</a>",0],["impl VertexManager for <a class=\"struct\" href=\"tez_core/vertex_managers/struct.RootInputVertexManager.html\" title=\"struct tez_core::vertex_managers::RootInputVertexManager\">RootInputVertexManager</a>",0],["impl VertexManager for <a class=\"struct\" href=\"tez_core/vertex_managers/struct.ShuffleVertexManager.html\" title=\"struct tez_core::vertex_managers::ShuffleVertexManager\">ShuffleVertexManager</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[868]}