(function() {
    const implementors = Object.fromEntries([["tez_shuffle",[["impl OutputCommitter for <a class=\"struct\" href=\"tez_shuffle/io/struct.DfsCommitter.html\" title=\"struct tez_shuffle::io::DfsCommitter\">DfsCommitter</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[181]}