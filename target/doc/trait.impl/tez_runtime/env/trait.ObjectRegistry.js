(function() {
    const implementors = Object.fromEntries([["tez_core",[["impl ObjectRegistry for <a class=\"struct\" href=\"tez_core/objreg/struct.ContainerObjectRegistry.html\" title=\"struct tez_core::objreg::ContainerObjectRegistry\">ContainerObjectRegistry</a>",0]]],["tez_runtime",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[212,19]}