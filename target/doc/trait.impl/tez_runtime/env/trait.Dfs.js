(function() {
    const implementors = Object.fromEntries([["tez_runtime",[]],["tez_yarn",[["impl Dfs for <a class=\"struct\" href=\"tez_yarn/hdfs/struct.SimHdfs.html\" title=\"struct tez_yarn::hdfs::SimHdfs\">SimHdfs</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[18,150]}