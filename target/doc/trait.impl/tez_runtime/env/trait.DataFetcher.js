(function() {
    const implementors = Object.fromEntries([["tez_shuffle",[["impl DataFetcher for <a class=\"struct\" href=\"tez_shuffle/service/struct.RetryingFetcher.html\" title=\"struct tez_shuffle::service::RetryingFetcher\">RetryingFetcher</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[196]}