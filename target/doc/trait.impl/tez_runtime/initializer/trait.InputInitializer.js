(function() {
    const implementors = Object.fromEntries([["tez_core",[["impl InputInitializer for <a class=\"struct\" href=\"tez_core/initializers/struct.HdfsSplitInitializer.html\" title=\"struct tez_core::initializers::HdfsSplitInitializer\">HdfsSplitInitializer</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[217]}