(function() {
    const implementors = Object.fromEntries([["tez_shuffle",[["impl KvGroupReader for <a class=\"struct\" href=\"tez_shuffle/merge/struct.GroupedRunReader.html\" title=\"struct tez_shuffle::merge::GroupedRunReader\">GroupedRunReader</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[197]}