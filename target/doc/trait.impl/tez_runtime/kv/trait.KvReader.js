(function() {
    const implementors = Object.fromEntries([["tez_runtime",[]],["tez_shuffle",[["impl KvReader for <a class=\"struct\" href=\"tez_shuffle/merge/struct.MergingCursor.html\" title=\"struct tez_shuffle::merge::MergingCursor\">MergingCursor</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[18,184]}