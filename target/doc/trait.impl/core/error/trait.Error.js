(function() {
    const implementors = Object.fromEntries([["proptest",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"struct\" href=\"proptest/struct.TestCaseError.html\" title=\"struct proptest::TestCaseError\">TestCaseError</a>",0]]],["tez_dag",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"tez_dag/error/enum.DagError.html\" title=\"enum tez_dag::error::DagError\">DagError</a>",0]]],["tez_runtime",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/error/trait.Error.html\" title=\"trait core::error::Error\">Error</a> for <a class=\"enum\" href=\"tez_runtime/error/enum.TaskError.html\" title=\"enum tez_runtime::error::TaskError\">TaskError</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[286,276,291]}