(function() {
    const implementors = Object.fromEntries([["tez_bench",[["impl YarnApp for <a class=\"struct\" href=\"tez_bench/load/struct.BackgroundLoad.html\" title=\"struct tez_bench::load::BackgroundLoad\">BackgroundLoad</a>",0]]],["tez_core",[["impl YarnApp for <a class=\"struct\" href=\"tez_core/struct.DagAppMaster.html\" title=\"struct tez_core::DagAppMaster\">DagAppMaster</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[177,158]}