(function() {
    const implementors = Object.fromEntries([["tez_core",[["impl EdgeManagerPlugin for <a class=\"struct\" href=\"tez_core/edge_managers/struct.GroupedScatterGatherEdgeManager.html\" title=\"struct tez_core::edge_managers::GroupedScatterGatherEdgeManager\">GroupedScatterGatherEdgeManager</a>",0]]],["tez_dag",[]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[253,15]}