/root/repo/target/release/deps/dag_expansion-80aa3551082d0593.d: examples/dag_expansion.rs

/root/repo/target/release/deps/dag_expansion-80aa3551082d0593: examples/dag_expansion.rs

examples/dag_expansion.rs:
