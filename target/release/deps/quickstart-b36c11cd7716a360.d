/root/repo/target/release/deps/quickstart-b36c11cd7716a360.d: examples/quickstart.rs

/root/repo/target/release/deps/quickstart-b36c11cd7716a360: examples/quickstart.rs

examples/quickstart.rs:
