/root/repo/target/release/deps/worker_scaling-124e6110c4c32de8.d: crates/bench/benches/worker_scaling.rs

/root/repo/target/release/deps/worker_scaling-124e6110c4c32de8: crates/bench/benches/worker_scaling.rs

crates/bench/benches/worker_scaling.rs:
