/root/repo/target/release/deps/tez_spark-acff63bdf8157f74.d: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

/root/repo/target/release/deps/libtez_spark-acff63bdf8157f74.rlib: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

/root/repo/target/release/deps/libtez_spark-acff63bdf8157f74.rmeta: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

crates/spark/src/lib.rs:
crates/spark/src/compile.rs:
crates/spark/src/rdd.rs:
crates/spark/src/tenancy.rs:
