/root/repo/target/release/deps/hive_tpch-15623dbf8fd3243f.d: examples/hive_tpch.rs

/root/repo/target/release/deps/hive_tpch-15623dbf8fd3243f: examples/hive_tpch.rs

examples/hive_tpch.rs:
