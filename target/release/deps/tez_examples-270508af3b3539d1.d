/root/repo/target/release/deps/tez_examples-270508af3b3539d1.d: examples/lib.rs

/root/repo/target/release/deps/libtez_examples-270508af3b3539d1.rlib: examples/lib.rs

/root/repo/target/release/deps/libtez_examples-270508af3b3539d1.rmeta: examples/lib.rs

examples/lib.rs:
