/root/repo/target/release/deps/proptest-7fdfeedbcc648d26.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/release/deps/libproptest-7fdfeedbcc648d26.rlib: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/release/deps/libproptest-7fdfeedbcc648d26.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/runner.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
