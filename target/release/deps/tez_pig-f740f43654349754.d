/root/repo/target/release/deps/tez_pig-f740f43654349754.d: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

/root/repo/target/release/deps/libtez_pig-f740f43654349754.rlib: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

/root/repo/target/release/deps/libtez_pig-f740f43654349754.rmeta: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

crates/pig/src/lib.rs:
crates/pig/src/compile.rs:
crates/pig/src/engine.rs:
crates/pig/src/kmeans.rs:
crates/pig/src/script.rs:
crates/pig/src/workloads.rs:
