/root/repo/target/release/deps/tez_yarn-9ec18687f747eccf.d: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

/root/repo/target/release/deps/libtez_yarn-9ec18687f747eccf.rlib: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

/root/repo/target/release/deps/libtez_yarn-9ec18687f747eccf.rmeta: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

crates/yarn/src/lib.rs:
crates/yarn/src/app.rs:
crates/yarn/src/cost.rs:
crates/yarn/src/fault.rs:
crates/yarn/src/hdfs.rs:
crates/yarn/src/pool.rs:
crates/yarn/src/rm.rs:
crates/yarn/src/sim.rs:
crates/yarn/src/trace.rs:
crates/yarn/src/types.rs:
