/root/repo/target/release/deps/tez_dag-01ebb8930e818265.d: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs

/root/repo/target/release/deps/libtez_dag-01ebb8930e818265.rlib: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs

/root/repo/target/release/deps/libtez_dag-01ebb8930e818265.rmeta: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs

crates/dag/src/lib.rs:
crates/dag/src/builder.rs:
crates/dag/src/edge.rs:
crates/dag/src/error.rs:
crates/dag/src/expand.rs:
crates/dag/src/graph.rs:
crates/dag/src/payload.rs:
crates/dag/src/vertex.rs:
