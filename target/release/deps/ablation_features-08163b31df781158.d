/root/repo/target/release/deps/ablation_features-08163b31df781158.d: crates/bench/benches/ablation_features.rs

/root/repo/target/release/deps/ablation_features-08163b31df781158: crates/bench/benches/ablation_features.rs

crates/bench/benches/ablation_features.rs:
