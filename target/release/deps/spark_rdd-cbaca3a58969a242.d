/root/repo/target/release/deps/spark_rdd-cbaca3a58969a242.d: examples/spark_rdd.rs

/root/repo/target/release/deps/spark_rdd-cbaca3a58969a242: examples/spark_rdd.rs

examples/spark_rdd.rs:
