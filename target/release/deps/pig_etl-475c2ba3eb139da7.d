/root/repo/target/release/deps/pig_etl-475c2ba3eb139da7.d: examples/pig_etl.rs

/root/repo/target/release/deps/pig_etl-475c2ba3eb139da7: examples/pig_etl.rs

examples/pig_etl.rs:
