/root/repo/target/release/deps/tez_mapreduce-7bb8b3486994a2d6.d: crates/mapreduce/src/lib.rs

/root/repo/target/release/deps/libtez_mapreduce-7bb8b3486994a2d6.rlib: crates/mapreduce/src/lib.rs

/root/repo/target/release/deps/libtez_mapreduce-7bb8b3486994a2d6.rmeta: crates/mapreduce/src/lib.rs

crates/mapreduce/src/lib.rs:
