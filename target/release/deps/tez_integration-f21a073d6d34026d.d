/root/repo/target/release/deps/tez_integration-f21a073d6d34026d.d: tests/lib.rs

/root/repo/target/release/deps/libtez_integration-f21a073d6d34026d.rlib: tests/lib.rs

/root/repo/target/release/deps/libtez_integration-f21a073d6d34026d.rmeta: tests/lib.rs

tests/lib.rs:
