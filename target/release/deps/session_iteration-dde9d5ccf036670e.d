/root/repo/target/release/deps/session_iteration-dde9d5ccf036670e.d: examples/session_iteration.rs

/root/repo/target/release/deps/session_iteration-dde9d5ccf036670e: examples/session_iteration.rs

examples/session_iteration.rs:
