/root/repo/target/release/deps/fig7_session_trace-83b566caf53a129c.d: crates/bench/benches/fig7_session_trace.rs

/root/repo/target/release/deps/fig7_session_trace-83b566caf53a129c: crates/bench/benches/fig7_session_trace.rs

crates/bench/benches/fig7_session_trace.rs:
