/root/repo/target/release/deps/tez_shuffle-67f681ef4a726a64.d: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

/root/repo/target/release/deps/libtez_shuffle-67f681ef4a726a64.rlib: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

/root/repo/target/release/deps/libtez_shuffle-67f681ef4a726a64.rmeta: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

crates/shuffle/src/lib.rs:
crates/shuffle/src/codec.rs:
crates/shuffle/src/io.rs:
crates/shuffle/src/merge.rs:
crates/shuffle/src/service.rs:
crates/shuffle/src/sorter.rs:
