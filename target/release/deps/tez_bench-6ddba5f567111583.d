/root/repo/target/release/deps/tez_bench-6ddba5f567111583.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libtez_bench-6ddba5f567111583.rlib: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libtez_bench-6ddba5f567111583.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/load.rs:
crates/bench/src/table.rs:
