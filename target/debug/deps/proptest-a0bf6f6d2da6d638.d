/root/repo/target/debug/deps/proptest-a0bf6f6d2da6d638.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs Cargo.toml

/root/repo/target/debug/deps/libproptest-a0bf6f6d2da6d638.rmeta: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs Cargo.toml

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/runner.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
