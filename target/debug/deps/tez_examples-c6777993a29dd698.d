/root/repo/target/debug/deps/tez_examples-c6777993a29dd698.d: examples/lib.rs

/root/repo/target/debug/deps/libtez_examples-c6777993a29dd698.rlib: examples/lib.rs

/root/repo/target/debug/deps/libtez_examples-c6777993a29dd698.rmeta: examples/lib.rs

examples/lib.rs:
