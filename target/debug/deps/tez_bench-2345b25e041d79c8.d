/root/repo/target/debug/deps/tez_bench-2345b25e041d79c8.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libtez_bench-2345b25e041d79c8.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/load.rs:
crates/bench/src/table.rs:
