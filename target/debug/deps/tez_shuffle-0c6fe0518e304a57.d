/root/repo/target/debug/deps/tez_shuffle-0c6fe0518e304a57.d: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs Cargo.toml

/root/repo/target/debug/deps/libtez_shuffle-0c6fe0518e304a57.rmeta: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs Cargo.toml

crates/shuffle/src/lib.rs:
crates/shuffle/src/codec.rs:
crates/shuffle/src/io.rs:
crates/shuffle/src/merge.rs:
crates/shuffle/src/service.rs:
crates/shuffle/src/sorter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
