/root/repo/target/debug/deps/tez_mapreduce-81d3a4a0377138e6.d: crates/mapreduce/src/lib.rs

/root/repo/target/debug/deps/libtez_mapreduce-81d3a4a0377138e6.rlib: crates/mapreduce/src/lib.rs

/root/repo/target/debug/deps/libtez_mapreduce-81d3a4a0377138e6.rmeta: crates/mapreduce/src/lib.rs

crates/mapreduce/src/lib.rs:
