/root/repo/target/debug/deps/properties-8030ea348cfa862a.d: crates/hive/tests/properties.rs

/root/repo/target/debug/deps/properties-8030ea348cfa862a: crates/hive/tests/properties.rs

crates/hive/tests/properties.rs:
