/root/repo/target/debug/deps/tez_bench-8d147b764880b2cd.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libtez_bench-8d147b764880b2cd.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/load.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
