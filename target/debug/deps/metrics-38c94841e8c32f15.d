/root/repo/target/debug/deps/metrics-38c94841e8c32f15.d: tests/tests/metrics.rs

/root/repo/target/debug/deps/metrics-38c94841e8c32f15: tests/tests/metrics.rs

tests/tests/metrics.rs:
