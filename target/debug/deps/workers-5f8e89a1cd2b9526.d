/root/repo/target/debug/deps/workers-5f8e89a1cd2b9526.d: tests/tests/workers.rs

/root/repo/target/debug/deps/workers-5f8e89a1cd2b9526: tests/tests/workers.rs

tests/tests/workers.rs:
