/root/repo/target/debug/deps/tez_examples-09d2935196645a4c.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtez_examples-09d2935196645a4c.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
