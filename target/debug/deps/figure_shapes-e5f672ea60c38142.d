/root/repo/target/debug/deps/figure_shapes-e5f672ea60c38142.d: tests/tests/figure_shapes.rs

/root/repo/target/debug/deps/figure_shapes-e5f672ea60c38142: tests/tests/figure_shapes.rs

tests/tests/figure_shapes.rs:
