/root/repo/target/debug/deps/pig_backends-2c21832037936405.d: crates/pig/tests/pig_backends.rs Cargo.toml

/root/repo/target/debug/deps/libpig_backends-2c21832037936405.rmeta: crates/pig/tests/pig_backends.rs Cargo.toml

crates/pig/tests/pig_backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
