/root/repo/target/debug/deps/ablation_features-634207da32efb653.d: crates/bench/benches/ablation_features.rs Cargo.toml

/root/repo/target/debug/deps/libablation_features-634207da32efb653.rmeta: crates/bench/benches/ablation_features.rs Cargo.toml

crates/bench/benches/ablation_features.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
