/root/repo/target/debug/deps/tez_examples-d282ee3e8147e311.d: examples/lib.rs

/root/repo/target/debug/deps/libtez_examples-d282ee3e8147e311.rmeta: examples/lib.rs

examples/lib.rs:
