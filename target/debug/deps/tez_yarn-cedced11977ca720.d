/root/repo/target/debug/deps/tez_yarn-cedced11977ca720.d: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

/root/repo/target/debug/deps/libtez_yarn-cedced11977ca720.rlib: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

/root/repo/target/debug/deps/libtez_yarn-cedced11977ca720.rmeta: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

crates/yarn/src/lib.rs:
crates/yarn/src/app.rs:
crates/yarn/src/cost.rs:
crates/yarn/src/fault.rs:
crates/yarn/src/hdfs.rs:
crates/yarn/src/pool.rs:
crates/yarn/src/rm.rs:
crates/yarn/src/sim.rs:
crates/yarn/src/trace.rs:
crates/yarn/src/types.rs:
