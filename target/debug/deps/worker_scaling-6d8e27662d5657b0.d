/root/repo/target/debug/deps/worker_scaling-6d8e27662d5657b0.d: crates/bench/benches/worker_scaling.rs Cargo.toml

/root/repo/target/debug/deps/libworker_scaling-6d8e27662d5657b0.rmeta: crates/bench/benches/worker_scaling.rs Cargo.toml

crates/bench/benches/worker_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
