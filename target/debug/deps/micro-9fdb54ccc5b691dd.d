/root/repo/target/debug/deps/micro-9fdb54ccc5b691dd.d: crates/bench/benches/micro.rs Cargo.toml

/root/repo/target/debug/deps/libmicro-9fdb54ccc5b691dd.rmeta: crates/bench/benches/micro.rs Cargo.toml

crates/bench/benches/micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
