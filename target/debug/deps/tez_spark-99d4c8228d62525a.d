/root/repo/target/debug/deps/tez_spark-99d4c8228d62525a.d: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs Cargo.toml

/root/repo/target/debug/deps/libtez_spark-99d4c8228d62525a.rmeta: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs Cargo.toml

crates/spark/src/lib.rs:
crates/spark/src/compile.rs:
crates/spark/src/rdd.rs:
crates/spark/src/tenancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
