/root/repo/target/debug/deps/tez_spark-510d8a82bd1b28f8.d: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

/root/repo/target/debug/deps/libtez_spark-510d8a82bd1b28f8.rlib: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

/root/repo/target/debug/deps/libtez_spark-510d8a82bd1b28f8.rmeta: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

crates/spark/src/lib.rs:
crates/spark/src/compile.rs:
crates/spark/src/rdd.rs:
crates/spark/src/tenancy.rs:
