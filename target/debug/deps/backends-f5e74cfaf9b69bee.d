/root/repo/target/debug/deps/backends-f5e74cfaf9b69bee.d: crates/hive/tests/backends.rs

/root/repo/target/debug/deps/backends-f5e74cfaf9b69bee: crates/hive/tests/backends.rs

crates/hive/tests/backends.rs:
