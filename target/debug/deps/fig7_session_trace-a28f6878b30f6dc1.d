/root/repo/target/debug/deps/fig7_session_trace-a28f6878b30f6dc1.d: crates/bench/benches/fig7_session_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig7_session_trace-a28f6878b30f6dc1.rmeta: crates/bench/benches/fig7_session_trace.rs Cargo.toml

crates/bench/benches/fig7_session_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
