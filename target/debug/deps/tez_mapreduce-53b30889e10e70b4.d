/root/repo/target/debug/deps/tez_mapreduce-53b30889e10e70b4.d: crates/mapreduce/src/lib.rs

/root/repo/target/debug/deps/tez_mapreduce-53b30889e10e70b4: crates/mapreduce/src/lib.rs

crates/mapreduce/src/lib.rs:
