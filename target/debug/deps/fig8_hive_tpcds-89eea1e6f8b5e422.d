/root/repo/target/debug/deps/fig8_hive_tpcds-89eea1e6f8b5e422.d: crates/bench/benches/fig8_hive_tpcds.rs Cargo.toml

/root/repo/target/debug/deps/libfig8_hive_tpcds-89eea1e6f8b5e422.rmeta: crates/bench/benches/fig8_hive_tpcds.rs Cargo.toml

crates/bench/benches/fig8_hive_tpcds.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
