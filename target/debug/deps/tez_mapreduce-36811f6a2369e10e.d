/root/repo/target/debug/deps/tez_mapreduce-36811f6a2369e10e.d: crates/mapreduce/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtez_mapreduce-36811f6a2369e10e.rmeta: crates/mapreduce/src/lib.rs Cargo.toml

crates/mapreduce/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
