/root/repo/target/debug/deps/session_iteration-50ebefb03bc8327e.d: examples/session_iteration.rs Cargo.toml

/root/repo/target/debug/deps/libsession_iteration-50ebefb03bc8327e.rmeta: examples/session_iteration.rs Cargo.toml

examples/session_iteration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
