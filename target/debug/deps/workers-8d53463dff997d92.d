/root/repo/target/debug/deps/workers-8d53463dff997d92.d: tests/tests/workers.rs Cargo.toml

/root/repo/target/debug/deps/libworkers-8d53463dff997d92.rmeta: tests/tests/workers.rs Cargo.toml

tests/tests/workers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
