/root/repo/target/debug/deps/figure_shapes-d5a33b5b80cac067.d: tests/tests/figure_shapes.rs Cargo.toml

/root/repo/target/debug/deps/libfigure_shapes-d5a33b5b80cac067.rmeta: tests/tests/figure_shapes.rs Cargo.toml

tests/tests/figure_shapes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
