/root/repo/target/debug/deps/fig7_session_trace-d85f224f908541bc.d: crates/bench/benches/fig7_session_trace.rs

/root/repo/target/debug/deps/fig7_session_trace-d85f224f908541bc: crates/bench/benches/fig7_session_trace.rs

crates/bench/benches/fig7_session_trace.rs:
