/root/repo/target/debug/deps/fig11_pig_kmeans-37d567ce53bea2bd.d: crates/bench/benches/fig11_pig_kmeans.rs Cargo.toml

/root/repo/target/debug/deps/libfig11_pig_kmeans-37d567ce53bea2bd.rmeta: crates/bench/benches/fig11_pig_kmeans.rs Cargo.toml

crates/bench/benches/fig11_pig_kmeans.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
