/root/repo/target/debug/deps/fig8_hive_tpcds-f317bceb70673ae6.d: crates/bench/benches/fig8_hive_tpcds.rs

/root/repo/target/debug/deps/fig8_hive_tpcds-f317bceb70673ae6: crates/bench/benches/fig8_hive_tpcds.rs

crates/bench/benches/fig8_hive_tpcds.rs:
