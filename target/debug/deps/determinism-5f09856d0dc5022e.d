/root/repo/target/debug/deps/determinism-5f09856d0dc5022e.d: tests/tests/determinism.rs

/root/repo/target/debug/deps/determinism-5f09856d0dc5022e: tests/tests/determinism.rs

tests/tests/determinism.rs:
