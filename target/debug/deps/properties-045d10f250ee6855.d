/root/repo/target/debug/deps/properties-045d10f250ee6855.d: crates/hive/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-045d10f250ee6855.rmeta: crates/hive/tests/properties.rs Cargo.toml

crates/hive/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
