/root/repo/target/debug/deps/tez_runtime-bc476f8ecf111b21.d: crates/runtime/src/lib.rs crates/runtime/src/committer.rs crates/runtime/src/counters.rs crates/runtime/src/env.rs crates/runtime/src/error.rs crates/runtime/src/events.rs crates/runtime/src/history.rs crates/runtime/src/initializer.rs crates/runtime/src/io.rs crates/runtime/src/json.rs crates/runtime/src/kv.rs crates/runtime/src/metrics.rs crates/runtime/src/registry.rs crates/runtime/src/run_report.rs crates/runtime/src/timeline.rs crates/runtime/src/vertex_manager.rs

/root/repo/target/debug/deps/libtez_runtime-bc476f8ecf111b21.rmeta: crates/runtime/src/lib.rs crates/runtime/src/committer.rs crates/runtime/src/counters.rs crates/runtime/src/env.rs crates/runtime/src/error.rs crates/runtime/src/events.rs crates/runtime/src/history.rs crates/runtime/src/initializer.rs crates/runtime/src/io.rs crates/runtime/src/json.rs crates/runtime/src/kv.rs crates/runtime/src/metrics.rs crates/runtime/src/registry.rs crates/runtime/src/run_report.rs crates/runtime/src/timeline.rs crates/runtime/src/vertex_manager.rs

crates/runtime/src/lib.rs:
crates/runtime/src/committer.rs:
crates/runtime/src/counters.rs:
crates/runtime/src/env.rs:
crates/runtime/src/error.rs:
crates/runtime/src/events.rs:
crates/runtime/src/history.rs:
crates/runtime/src/initializer.rs:
crates/runtime/src/io.rs:
crates/runtime/src/json.rs:
crates/runtime/src/kv.rs:
crates/runtime/src/metrics.rs:
crates/runtime/src/registry.rs:
crates/runtime/src/run_report.rs:
crates/runtime/src/timeline.rs:
crates/runtime/src/vertex_manager.rs:
