/root/repo/target/debug/deps/dag_expansion-d86510d7f1314ae3.d: examples/dag_expansion.rs

/root/repo/target/debug/deps/dag_expansion-d86510d7f1314ae3: examples/dag_expansion.rs

examples/dag_expansion.rs:
