/root/repo/target/debug/deps/end_to_end-88f710910a257644.d: crates/core/tests/end_to_end.rs Cargo.toml

/root/repo/target/debug/deps/libend_to_end-88f710910a257644.rmeta: crates/core/tests/end_to_end.rs Cargo.toml

crates/core/tests/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
