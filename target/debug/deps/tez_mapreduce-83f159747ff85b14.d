/root/repo/target/debug/deps/tez_mapreduce-83f159747ff85b14.d: crates/mapreduce/src/lib.rs

/root/repo/target/debug/deps/libtez_mapreduce-83f159747ff85b14.rmeta: crates/mapreduce/src/lib.rs

crates/mapreduce/src/lib.rs:
