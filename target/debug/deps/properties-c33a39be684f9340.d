/root/repo/target/debug/deps/properties-c33a39be684f9340.d: crates/dag/tests/properties.rs

/root/repo/target/debug/deps/properties-c33a39be684f9340: crates/dag/tests/properties.rs

crates/dag/tests/properties.rs:
