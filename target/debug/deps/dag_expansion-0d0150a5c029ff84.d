/root/repo/target/debug/deps/dag_expansion-0d0150a5c029ff84.d: examples/dag_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libdag_expansion-0d0150a5c029ff84.rmeta: examples/dag_expansion.rs Cargo.toml

examples/dag_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
