/root/repo/target/debug/deps/properties-b1c5ae257217df04.d: crates/yarn/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b1c5ae257217df04.rmeta: crates/yarn/tests/properties.rs Cargo.toml

crates/yarn/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
