/root/repo/target/debug/deps/hive_tpch-43e668e2352d2056.d: examples/hive_tpch.rs Cargo.toml

/root/repo/target/debug/deps/libhive_tpch-43e668e2352d2056.rmeta: examples/hive_tpch.rs Cargo.toml

examples/hive_tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
