/root/repo/target/debug/deps/dag_expansion-6d85abb91bf69439.d: examples/dag_expansion.rs Cargo.toml

/root/repo/target/debug/deps/libdag_expansion-6d85abb91bf69439.rmeta: examples/dag_expansion.rs Cargo.toml

examples/dag_expansion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
