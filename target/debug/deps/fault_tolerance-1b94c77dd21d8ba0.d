/root/repo/target/debug/deps/fault_tolerance-1b94c77dd21d8ba0.d: tests/tests/fault_tolerance.rs

/root/repo/target/debug/deps/fault_tolerance-1b94c77dd21d8ba0: tests/tests/fault_tolerance.rs

tests/tests/fault_tolerance.rs:
