/root/repo/target/debug/deps/tez_dag-0d73d3f65c92d18b.d: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs

/root/repo/target/debug/deps/libtez_dag-0d73d3f65c92d18b.rmeta: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs

crates/dag/src/lib.rs:
crates/dag/src/builder.rs:
crates/dag/src/edge.rs:
crates/dag/src/error.rs:
crates/dag/src/expand.rs:
crates/dag/src/graph.rs:
crates/dag/src/payload.rs:
crates/dag/src/vertex.rs:
