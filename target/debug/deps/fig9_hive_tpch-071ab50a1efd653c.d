/root/repo/target/debug/deps/fig9_hive_tpch-071ab50a1efd653c.d: crates/bench/benches/fig9_hive_tpch.rs

/root/repo/target/debug/deps/fig9_hive_tpch-071ab50a1efd653c: crates/bench/benches/fig9_hive_tpch.rs

crates/bench/benches/fig9_hive_tpch.rs:
