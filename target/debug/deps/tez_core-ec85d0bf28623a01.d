/root/repo/target/debug/deps/tez_core-ec85d0bf28623a01.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/edge_managers.rs crates/core/src/executor.rs crates/core/src/initializers.rs crates/core/src/objreg.rs crates/core/src/report.rs crates/core/src/vertex_managers.rs crates/core/src/am.rs Cargo.toml

/root/repo/target/debug/deps/libtez_core-ec85d0bf28623a01.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/edge_managers.rs crates/core/src/executor.rs crates/core/src/initializers.rs crates/core/src/objreg.rs crates/core/src/report.rs crates/core/src/vertex_managers.rs crates/core/src/am.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/edge_managers.rs:
crates/core/src/executor.rs:
crates/core/src/initializers.rs:
crates/core/src/objreg.rs:
crates/core/src/report.rs:
crates/core/src/vertex_managers.rs:
crates/core/src/am.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
