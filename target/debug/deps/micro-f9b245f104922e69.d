/root/repo/target/debug/deps/micro-f9b245f104922e69.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-f9b245f104922e69: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
