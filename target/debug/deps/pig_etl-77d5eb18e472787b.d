/root/repo/target/debug/deps/pig_etl-77d5eb18e472787b.d: examples/pig_etl.rs Cargo.toml

/root/repo/target/debug/deps/libpig_etl-77d5eb18e472787b.rmeta: examples/pig_etl.rs Cargo.toml

examples/pig_etl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
