/root/repo/target/debug/deps/tez_pig-af50bcc21c1f7904.d: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

/root/repo/target/debug/deps/tez_pig-af50bcc21c1f7904: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

crates/pig/src/lib.rs:
crates/pig/src/compile.rs:
crates/pig/src/engine.rs:
crates/pig/src/kmeans.rs:
crates/pig/src/script.rs:
crates/pig/src/workloads.rs:
