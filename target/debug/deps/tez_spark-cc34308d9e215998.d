/root/repo/target/debug/deps/tez_spark-cc34308d9e215998.d: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

/root/repo/target/debug/deps/libtez_spark-cc34308d9e215998.rmeta: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

crates/spark/src/lib.rs:
crates/spark/src/compile.rs:
crates/spark/src/rdd.rs:
crates/spark/src/tenancy.rs:
