/root/repo/target/debug/deps/worker_scaling-3d29057ae7df8273.d: crates/bench/benches/worker_scaling.rs

/root/repo/target/debug/deps/worker_scaling-3d29057ae7df8273: crates/bench/benches/worker_scaling.rs

crates/bench/benches/worker_scaling.rs:
