/root/repo/target/debug/deps/tez_yarn-3e05de2436d54305.d: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

/root/repo/target/debug/deps/libtez_yarn-3e05de2436d54305.rmeta: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs

crates/yarn/src/lib.rs:
crates/yarn/src/app.rs:
crates/yarn/src/cost.rs:
crates/yarn/src/fault.rs:
crates/yarn/src/hdfs.rs:
crates/yarn/src/pool.rs:
crates/yarn/src/rm.rs:
crates/yarn/src/sim.rs:
crates/yarn/src/trace.rs:
crates/yarn/src/types.rs:
