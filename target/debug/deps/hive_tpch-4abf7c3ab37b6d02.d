/root/repo/target/debug/deps/hive_tpch-4abf7c3ab37b6d02.d: examples/hive_tpch.rs

/root/repo/target/debug/deps/hive_tpch-4abf7c3ab37b6d02: examples/hive_tpch.rs

examples/hive_tpch.rs:
