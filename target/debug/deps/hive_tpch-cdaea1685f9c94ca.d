/root/repo/target/debug/deps/hive_tpch-cdaea1685f9c94ca.d: examples/hive_tpch.rs

/root/repo/target/debug/deps/hive_tpch-cdaea1685f9c94ca: examples/hive_tpch.rs

examples/hive_tpch.rs:
