/root/repo/target/debug/deps/zz_probe-a83ccf315fa639d5.d: tests/tests/zz_probe.rs

/root/repo/target/debug/deps/zz_probe-a83ccf315fa639d5: tests/tests/zz_probe.rs

tests/tests/zz_probe.rs:
