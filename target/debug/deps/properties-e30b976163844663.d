/root/repo/target/debug/deps/properties-e30b976163844663.d: crates/shuffle/tests/properties.rs

/root/repo/target/debug/deps/properties-e30b976163844663: crates/shuffle/tests/properties.rs

crates/shuffle/tests/properties.rs:
