/root/repo/target/debug/deps/properties-64fafadc2d7f98b4.d: crates/shuffle/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-64fafadc2d7f98b4.rmeta: crates/shuffle/tests/properties.rs Cargo.toml

crates/shuffle/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
