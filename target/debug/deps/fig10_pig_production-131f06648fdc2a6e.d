/root/repo/target/debug/deps/fig10_pig_production-131f06648fdc2a6e.d: crates/bench/benches/fig10_pig_production.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_pig_production-131f06648fdc2a6e.rmeta: crates/bench/benches/fig10_pig_production.rs Cargo.toml

crates/bench/benches/fig10_pig_production.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
