/root/repo/target/debug/deps/tez_examples-45db5f611566e851.d: examples/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtez_examples-45db5f611566e851.rmeta: examples/lib.rs Cargo.toml

examples/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
