/root/repo/target/debug/deps/fig10_pig_production-a4cb222f8e53c10c.d: crates/bench/benches/fig10_pig_production.rs

/root/repo/target/debug/deps/fig10_pig_production-a4cb222f8e53c10c: crates/bench/benches/fig10_pig_production.rs

crates/bench/benches/fig10_pig_production.rs:
