/root/repo/target/debug/deps/tez_mapreduce-935c3c25f793fae5.d: crates/mapreduce/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtez_mapreduce-935c3c25f793fae5.rmeta: crates/mapreduce/src/lib.rs Cargo.toml

crates/mapreduce/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
