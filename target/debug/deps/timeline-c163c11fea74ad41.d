/root/repo/target/debug/deps/timeline-c163c11fea74ad41.d: tests/tests/timeline.rs Cargo.toml

/root/repo/target/debug/deps/libtimeline-c163c11fea74ad41.rmeta: tests/tests/timeline.rs Cargo.toml

tests/tests/timeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
