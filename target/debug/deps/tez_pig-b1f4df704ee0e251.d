/root/repo/target/debug/deps/tez_pig-b1f4df704ee0e251.d: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

/root/repo/target/debug/deps/libtez_pig-b1f4df704ee0e251.rlib: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

/root/repo/target/debug/deps/libtez_pig-b1f4df704ee0e251.rmeta: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

crates/pig/src/lib.rs:
crates/pig/src/compile.rs:
crates/pig/src/engine.rs:
crates/pig/src/kmeans.rs:
crates/pig/src/script.rs:
crates/pig/src/workloads.rs:
