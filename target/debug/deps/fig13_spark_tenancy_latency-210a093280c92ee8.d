/root/repo/target/debug/deps/fig13_spark_tenancy_latency-210a093280c92ee8.d: crates/bench/benches/fig13_spark_tenancy_latency.rs

/root/repo/target/debug/deps/fig13_spark_tenancy_latency-210a093280c92ee8: crates/bench/benches/fig13_spark_tenancy_latency.rs

crates/bench/benches/fig13_spark_tenancy_latency.rs:
