/root/repo/target/debug/deps/tez_integration-2fdb6dc5fd707238.d: tests/lib.rs

/root/repo/target/debug/deps/libtez_integration-2fdb6dc5fd707238.rlib: tests/lib.rs

/root/repo/target/debug/deps/libtez_integration-2fdb6dc5fd707238.rmeta: tests/lib.rs

tests/lib.rs:
