/root/repo/target/debug/deps/tez_integration-c9514fd6e47d7b87.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtez_integration-c9514fd6e47d7b87.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
