/root/repo/target/debug/deps/pig_etl-f98420b9d05575de.d: examples/pig_etl.rs

/root/repo/target/debug/deps/pig_etl-f98420b9d05575de: examples/pig_etl.rs

examples/pig_etl.rs:
