/root/repo/target/debug/deps/tez_shuffle-ba101e52a35c55d6.d: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

/root/repo/target/debug/deps/tez_shuffle-ba101e52a35c55d6: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

crates/shuffle/src/lib.rs:
crates/shuffle/src/codec.rs:
crates/shuffle/src/io.rs:
crates/shuffle/src/merge.rs:
crates/shuffle/src/service.rs:
crates/shuffle/src/sorter.rs:
