/root/repo/target/debug/deps/backends-3dc6424787c42291.d: crates/hive/tests/backends.rs Cargo.toml

/root/repo/target/debug/deps/libbackends-3dc6424787c42291.rmeta: crates/hive/tests/backends.rs Cargo.toml

crates/hive/tests/backends.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
