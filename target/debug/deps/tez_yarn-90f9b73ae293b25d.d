/root/repo/target/debug/deps/tez_yarn-90f9b73ae293b25d.d: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtez_yarn-90f9b73ae293b25d.rmeta: crates/yarn/src/lib.rs crates/yarn/src/app.rs crates/yarn/src/cost.rs crates/yarn/src/fault.rs crates/yarn/src/hdfs.rs crates/yarn/src/pool.rs crates/yarn/src/rm.rs crates/yarn/src/sim.rs crates/yarn/src/trace.rs crates/yarn/src/types.rs Cargo.toml

crates/yarn/src/lib.rs:
crates/yarn/src/app.rs:
crates/yarn/src/cost.rs:
crates/yarn/src/fault.rs:
crates/yarn/src/hdfs.rs:
crates/yarn/src/pool.rs:
crates/yarn/src/rm.rs:
crates/yarn/src/sim.rs:
crates/yarn/src/trace.rs:
crates/yarn/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
