/root/repo/target/debug/deps/tez_hive-0bacbb4cdab170a4.d: crates/hive/src/lib.rs crates/hive/src/catalog.rs crates/hive/src/compile_mr.rs crates/hive/src/compile_tez.rs crates/hive/src/engine.rs crates/hive/src/expr.rs crates/hive/src/physical.rs crates/hive/src/plan.rs crates/hive/src/query.rs crates/hive/src/tpcds.rs crates/hive/src/tpch.rs crates/hive/src/types.rs

/root/repo/target/debug/deps/libtez_hive-0bacbb4cdab170a4.rmeta: crates/hive/src/lib.rs crates/hive/src/catalog.rs crates/hive/src/compile_mr.rs crates/hive/src/compile_tez.rs crates/hive/src/engine.rs crates/hive/src/expr.rs crates/hive/src/physical.rs crates/hive/src/plan.rs crates/hive/src/query.rs crates/hive/src/tpcds.rs crates/hive/src/tpch.rs crates/hive/src/types.rs

crates/hive/src/lib.rs:
crates/hive/src/catalog.rs:
crates/hive/src/compile_mr.rs:
crates/hive/src/compile_tez.rs:
crates/hive/src/engine.rs:
crates/hive/src/expr.rs:
crates/hive/src/physical.rs:
crates/hive/src/plan.rs:
crates/hive/src/query.rs:
crates/hive/src/tpcds.rs:
crates/hive/src/tpch.rs:
crates/hive/src/types.rs:
