/root/repo/target/debug/deps/tez_bench-8a4e22da2aa5442a.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/tez_bench-8a4e22da2aa5442a: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/load.rs:
crates/bench/src/table.rs:
