/root/repo/target/debug/deps/properties-7be662d01222d6d4.d: crates/yarn/tests/properties.rs

/root/repo/target/debug/deps/properties-7be662d01222d6d4: crates/yarn/tests/properties.rs

crates/yarn/tests/properties.rs:
