/root/repo/target/debug/deps/fig9_hive_tpch-ef7fae608aa6e1ae.d: crates/bench/benches/fig9_hive_tpch.rs Cargo.toml

/root/repo/target/debug/deps/libfig9_hive_tpch-ef7fae608aa6e1ae.rmeta: crates/bench/benches/fig9_hive_tpch.rs Cargo.toml

crates/bench/benches/fig9_hive_tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
