/root/repo/target/debug/deps/tez_pig-19a1547e62009dbc.d: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

/root/repo/target/debug/deps/libtez_pig-19a1547e62009dbc.rmeta: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs

crates/pig/src/lib.rs:
crates/pig/src/compile.rs:
crates/pig/src/engine.rs:
crates/pig/src/kmeans.rs:
crates/pig/src/script.rs:
crates/pig/src/workloads.rs:
