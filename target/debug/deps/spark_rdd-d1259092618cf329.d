/root/repo/target/debug/deps/spark_rdd-d1259092618cf329.d: examples/spark_rdd.rs Cargo.toml

/root/repo/target/debug/deps/libspark_rdd-d1259092618cf329.rmeta: examples/spark_rdd.rs Cargo.toml

examples/spark_rdd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
