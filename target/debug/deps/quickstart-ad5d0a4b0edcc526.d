/root/repo/target/debug/deps/quickstart-ad5d0a4b0edcc526.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-ad5d0a4b0edcc526.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
