/root/repo/target/debug/deps/tez_hive-4c3a3c4491656194.d: crates/hive/src/lib.rs crates/hive/src/catalog.rs crates/hive/src/compile_mr.rs crates/hive/src/compile_tez.rs crates/hive/src/engine.rs crates/hive/src/expr.rs crates/hive/src/physical.rs crates/hive/src/plan.rs crates/hive/src/query.rs crates/hive/src/tpcds.rs crates/hive/src/tpch.rs crates/hive/src/types.rs Cargo.toml

/root/repo/target/debug/deps/libtez_hive-4c3a3c4491656194.rmeta: crates/hive/src/lib.rs crates/hive/src/catalog.rs crates/hive/src/compile_mr.rs crates/hive/src/compile_tez.rs crates/hive/src/engine.rs crates/hive/src/expr.rs crates/hive/src/physical.rs crates/hive/src/plan.rs crates/hive/src/query.rs crates/hive/src/tpcds.rs crates/hive/src/tpch.rs crates/hive/src/types.rs Cargo.toml

crates/hive/src/lib.rs:
crates/hive/src/catalog.rs:
crates/hive/src/compile_mr.rs:
crates/hive/src/compile_tez.rs:
crates/hive/src/engine.rs:
crates/hive/src/expr.rs:
crates/hive/src/physical.rs:
crates/hive/src/plan.rs:
crates/hive/src/query.rs:
crates/hive/src/tpcds.rs:
crates/hive/src/tpch.rs:
crates/hive/src/types.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
