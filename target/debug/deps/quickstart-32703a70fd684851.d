/root/repo/target/debug/deps/quickstart-32703a70fd684851.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-32703a70fd684851: examples/quickstart.rs

examples/quickstart.rs:
