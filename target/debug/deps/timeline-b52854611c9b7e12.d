/root/repo/target/debug/deps/timeline-b52854611c9b7e12.d: tests/tests/timeline.rs

/root/repo/target/debug/deps/timeline-b52854611c9b7e12: tests/tests/timeline.rs

tests/tests/timeline.rs:
