/root/repo/target/debug/deps/tez_shuffle-2efc74301c29a0e8.d: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

/root/repo/target/debug/deps/libtez_shuffle-2efc74301c29a0e8.rmeta: crates/shuffle/src/lib.rs crates/shuffle/src/codec.rs crates/shuffle/src/io.rs crates/shuffle/src/merge.rs crates/shuffle/src/service.rs crates/shuffle/src/sorter.rs

crates/shuffle/src/lib.rs:
crates/shuffle/src/codec.rs:
crates/shuffle/src/io.rs:
crates/shuffle/src/merge.rs:
crates/shuffle/src/service.rs:
crates/shuffle/src/sorter.rs:
