/root/repo/target/debug/deps/metrics-7d00955be9bea29a.d: tests/tests/metrics.rs Cargo.toml

/root/repo/target/debug/deps/libmetrics-7d00955be9bea29a.rmeta: tests/tests/metrics.rs Cargo.toml

tests/tests/metrics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
