/root/repo/target/debug/deps/fig12_spark_tenancy_trace-1566bfb7a2ab5f6a.d: crates/bench/benches/fig12_spark_tenancy_trace.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_spark_tenancy_trace-1566bfb7a2ab5f6a.rmeta: crates/bench/benches/fig12_spark_tenancy_trace.rs Cargo.toml

crates/bench/benches/fig12_spark_tenancy_trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
