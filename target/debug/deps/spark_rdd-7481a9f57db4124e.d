/root/repo/target/debug/deps/spark_rdd-7481a9f57db4124e.d: examples/spark_rdd.rs

/root/repo/target/debug/deps/spark_rdd-7481a9f57db4124e: examples/spark_rdd.rs

examples/spark_rdd.rs:
