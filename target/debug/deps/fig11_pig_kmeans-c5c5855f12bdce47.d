/root/repo/target/debug/deps/fig11_pig_kmeans-c5c5855f12bdce47.d: crates/bench/benches/fig11_pig_kmeans.rs

/root/repo/target/debug/deps/fig11_pig_kmeans-c5c5855f12bdce47: crates/bench/benches/fig11_pig_kmeans.rs

crates/bench/benches/fig11_pig_kmeans.rs:
