/root/repo/target/debug/deps/tez_bench-626459e20b96a6f9.d: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libtez_bench-626459e20b96a6f9.rlib: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libtez_bench-626459e20b96a6f9.rmeta: crates/bench/src/lib.rs crates/bench/src/figs.rs crates/bench/src/load.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/figs.rs:
crates/bench/src/load.rs:
crates/bench/src/table.rs:
