/root/repo/target/debug/deps/scaling-e9b64eab73810897.d: tests/tests/scaling.rs Cargo.toml

/root/repo/target/debug/deps/libscaling-e9b64eab73810897.rmeta: tests/tests/scaling.rs Cargo.toml

tests/tests/scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
