/root/repo/target/debug/deps/tez_dag-ffeca424241e2526.d: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs Cargo.toml

/root/repo/target/debug/deps/libtez_dag-ffeca424241e2526.rmeta: crates/dag/src/lib.rs crates/dag/src/builder.rs crates/dag/src/edge.rs crates/dag/src/error.rs crates/dag/src/expand.rs crates/dag/src/graph.rs crates/dag/src/payload.rs crates/dag/src/vertex.rs Cargo.toml

crates/dag/src/lib.rs:
crates/dag/src/builder.rs:
crates/dag/src/edge.rs:
crates/dag/src/error.rs:
crates/dag/src/expand.rs:
crates/dag/src/graph.rs:
crates/dag/src/payload.rs:
crates/dag/src/vertex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
