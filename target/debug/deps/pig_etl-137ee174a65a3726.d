/root/repo/target/debug/deps/pig_etl-137ee174a65a3726.d: examples/pig_etl.rs Cargo.toml

/root/repo/target/debug/deps/libpig_etl-137ee174a65a3726.rmeta: examples/pig_etl.rs Cargo.toml

examples/pig_etl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
