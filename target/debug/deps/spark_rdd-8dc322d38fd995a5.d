/root/repo/target/debug/deps/spark_rdd-8dc322d38fd995a5.d: examples/spark_rdd.rs Cargo.toml

/root/repo/target/debug/deps/libspark_rdd-8dc322d38fd995a5.rmeta: examples/spark_rdd.rs Cargo.toml

examples/spark_rdd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
