/root/repo/target/debug/deps/session_iteration-92402a47abe41e16.d: examples/session_iteration.rs Cargo.toml

/root/repo/target/debug/deps/libsession_iteration-92402a47abe41e16.rmeta: examples/session_iteration.rs Cargo.toml

examples/session_iteration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
