/root/repo/target/debug/deps/tez_integration-487782c690493a79.d: tests/lib.rs

/root/repo/target/debug/deps/tez_integration-487782c690493a79: tests/lib.rs

tests/lib.rs:
