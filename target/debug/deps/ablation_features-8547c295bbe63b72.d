/root/repo/target/debug/deps/ablation_features-8547c295bbe63b72.d: crates/bench/benches/ablation_features.rs

/root/repo/target/debug/deps/ablation_features-8547c295bbe63b72: crates/bench/benches/ablation_features.rs

crates/bench/benches/ablation_features.rs:
