/root/repo/target/debug/deps/hive_tpch-f6ef188f53cdb2dc.d: examples/hive_tpch.rs Cargo.toml

/root/repo/target/debug/deps/libhive_tpch-f6ef188f53cdb2dc.rmeta: examples/hive_tpch.rs Cargo.toml

examples/hive_tpch.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
