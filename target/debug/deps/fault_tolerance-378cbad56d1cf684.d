/root/repo/target/debug/deps/fault_tolerance-378cbad56d1cf684.d: tests/tests/fault_tolerance.rs Cargo.toml

/root/repo/target/debug/deps/libfault_tolerance-378cbad56d1cf684.rmeta: tests/tests/fault_tolerance.rs Cargo.toml

tests/tests/fault_tolerance.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
