/root/repo/target/debug/deps/quickstart-1c101ee90a8b6a62.d: examples/quickstart.rs

/root/repo/target/debug/deps/quickstart-1c101ee90a8b6a62: examples/quickstart.rs

examples/quickstart.rs:
