/root/repo/target/debug/deps/tez_core-576222ffb0213143.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/edge_managers.rs crates/core/src/executor.rs crates/core/src/initializers.rs crates/core/src/objreg.rs crates/core/src/report.rs crates/core/src/vertex_managers.rs crates/core/src/am.rs

/root/repo/target/debug/deps/tez_core-576222ffb0213143: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/edge_managers.rs crates/core/src/executor.rs crates/core/src/initializers.rs crates/core/src/objreg.rs crates/core/src/report.rs crates/core/src/vertex_managers.rs crates/core/src/am.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/edge_managers.rs:
crates/core/src/executor.rs:
crates/core/src/initializers.rs:
crates/core/src/objreg.rs:
crates/core/src/report.rs:
crates/core/src/vertex_managers.rs:
crates/core/src/am.rs:
