/root/repo/target/debug/deps/spark_rdd-93ce9bd83570fc2b.d: examples/spark_rdd.rs

/root/repo/target/debug/deps/spark_rdd-93ce9bd83570fc2b: examples/spark_rdd.rs

examples/spark_rdd.rs:
