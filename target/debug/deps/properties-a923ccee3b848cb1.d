/root/repo/target/debug/deps/properties-a923ccee3b848cb1.d: crates/dag/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-a923ccee3b848cb1.rmeta: crates/dag/tests/properties.rs Cargo.toml

crates/dag/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
