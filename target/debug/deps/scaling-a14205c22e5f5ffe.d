/root/repo/target/debug/deps/scaling-a14205c22e5f5ffe.d: tests/tests/scaling.rs

/root/repo/target/debug/deps/scaling-a14205c22e5f5ffe: tests/tests/scaling.rs

tests/tests/scaling.rs:
