/root/repo/target/debug/deps/zz_probe-63d2d47df2c1523a.d: crates/hive/tests/zz_probe.rs

/root/repo/target/debug/deps/zz_probe-63d2d47df2c1523a: crates/hive/tests/zz_probe.rs

crates/hive/tests/zz_probe.rs:
