/root/repo/target/debug/deps/pig_backends-b4e6a224a15a856b.d: crates/pig/tests/pig_backends.rs

/root/repo/target/debug/deps/pig_backends-b4e6a224a15a856b: crates/pig/tests/pig_backends.rs

crates/pig/tests/pig_backends.rs:
