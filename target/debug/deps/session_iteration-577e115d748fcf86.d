/root/repo/target/debug/deps/session_iteration-577e115d748fcf86.d: examples/session_iteration.rs

/root/repo/target/debug/deps/session_iteration-577e115d748fcf86: examples/session_iteration.rs

examples/session_iteration.rs:
