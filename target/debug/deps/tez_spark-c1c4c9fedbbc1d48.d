/root/repo/target/debug/deps/tez_spark-c1c4c9fedbbc1d48.d: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

/root/repo/target/debug/deps/tez_spark-c1c4c9fedbbc1d48: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs

crates/spark/src/lib.rs:
crates/spark/src/compile.rs:
crates/spark/src/rdd.rs:
crates/spark/src/tenancy.rs:
