/root/repo/target/debug/deps/fig13_spark_tenancy_latency-5145e67ed907c4ee.d: crates/bench/benches/fig13_spark_tenancy_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_spark_tenancy_latency-5145e67ed907c4ee.rmeta: crates/bench/benches/fig13_spark_tenancy_latency.rs Cargo.toml

crates/bench/benches/fig13_spark_tenancy_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
