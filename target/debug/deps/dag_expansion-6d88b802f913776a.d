/root/repo/target/debug/deps/dag_expansion-6d88b802f913776a.d: examples/dag_expansion.rs

/root/repo/target/debug/deps/dag_expansion-6d88b802f913776a: examples/dag_expansion.rs

examples/dag_expansion.rs:
