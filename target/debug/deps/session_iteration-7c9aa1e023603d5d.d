/root/repo/target/debug/deps/session_iteration-7c9aa1e023603d5d.d: examples/session_iteration.rs

/root/repo/target/debug/deps/session_iteration-7c9aa1e023603d5d: examples/session_iteration.rs

examples/session_iteration.rs:
