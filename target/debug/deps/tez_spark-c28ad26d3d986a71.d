/root/repo/target/debug/deps/tez_spark-c28ad26d3d986a71.d: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs Cargo.toml

/root/repo/target/debug/deps/libtez_spark-c28ad26d3d986a71.rmeta: crates/spark/src/lib.rs crates/spark/src/compile.rs crates/spark/src/rdd.rs crates/spark/src/tenancy.rs Cargo.toml

crates/spark/src/lib.rs:
crates/spark/src/compile.rs:
crates/spark/src/rdd.rs:
crates/spark/src/tenancy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
