/root/repo/target/debug/deps/tez_pig-46ec0028192f3828.d: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs Cargo.toml

/root/repo/target/debug/deps/libtez_pig-46ec0028192f3828.rmeta: crates/pig/src/lib.rs crates/pig/src/compile.rs crates/pig/src/engine.rs crates/pig/src/kmeans.rs crates/pig/src/script.rs crates/pig/src/workloads.rs Cargo.toml

crates/pig/src/lib.rs:
crates/pig/src/compile.rs:
crates/pig/src/engine.rs:
crates/pig/src/kmeans.rs:
crates/pig/src/script.rs:
crates/pig/src/workloads.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
