/root/repo/target/debug/deps/end_to_end-66ae6fdb62d06edd.d: crates/core/tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-66ae6fdb62d06edd: crates/core/tests/end_to_end.rs

crates/core/tests/end_to_end.rs:
