/root/repo/target/debug/deps/tez_integration-3dde19a768bba4a8.d: tests/lib.rs Cargo.toml

/root/repo/target/debug/deps/libtez_integration-3dde19a768bba4a8.rmeta: tests/lib.rs Cargo.toml

tests/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
