/root/repo/target/debug/deps/proptest-57486ed7d664938b.d: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

/root/repo/target/debug/deps/proptest-57486ed7d664938b: vendor/proptest/src/lib.rs vendor/proptest/src/arbitrary.rs vendor/proptest/src/collection.rs vendor/proptest/src/option.rs vendor/proptest/src/runner.rs vendor/proptest/src/strategy.rs vendor/proptest/src/string.rs

vendor/proptest/src/lib.rs:
vendor/proptest/src/arbitrary.rs:
vendor/proptest/src/collection.rs:
vendor/proptest/src/option.rs:
vendor/proptest/src/runner.rs:
vendor/proptest/src/strategy.rs:
vendor/proptest/src/string.rs:
