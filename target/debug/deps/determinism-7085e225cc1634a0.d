/root/repo/target/debug/deps/determinism-7085e225cc1634a0.d: tests/tests/determinism.rs Cargo.toml

/root/repo/target/debug/deps/libdeterminism-7085e225cc1634a0.rmeta: tests/tests/determinism.rs Cargo.toml

tests/tests/determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
