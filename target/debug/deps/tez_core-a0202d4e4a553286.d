/root/repo/target/debug/deps/tez_core-a0202d4e4a553286.d: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/edge_managers.rs crates/core/src/executor.rs crates/core/src/initializers.rs crates/core/src/objreg.rs crates/core/src/report.rs crates/core/src/vertex_managers.rs crates/core/src/am.rs

/root/repo/target/debug/deps/libtez_core-a0202d4e4a553286.rmeta: crates/core/src/lib.rs crates/core/src/client.rs crates/core/src/config.rs crates/core/src/edge_managers.rs crates/core/src/executor.rs crates/core/src/initializers.rs crates/core/src/objreg.rs crates/core/src/report.rs crates/core/src/vertex_managers.rs crates/core/src/am.rs

crates/core/src/lib.rs:
crates/core/src/client.rs:
crates/core/src/config.rs:
crates/core/src/edge_managers.rs:
crates/core/src/executor.rs:
crates/core/src/initializers.rs:
crates/core/src/objreg.rs:
crates/core/src/report.rs:
crates/core/src/vertex_managers.rs:
crates/core/src/am.rs:
