/root/repo/target/debug/deps/fig12_spark_tenancy_trace-fe4815f26dbcb4c7.d: crates/bench/benches/fig12_spark_tenancy_trace.rs

/root/repo/target/debug/deps/fig12_spark_tenancy_trace-fe4815f26dbcb4c7: crates/bench/benches/fig12_spark_tenancy_trace.rs

crates/bench/benches/fig12_spark_tenancy_trace.rs:
