/root/repo/target/debug/deps/tez_examples-2689c809cd689ec0.d: examples/lib.rs

/root/repo/target/debug/deps/tez_examples-2689c809cd689ec0: examples/lib.rs

examples/lib.rs:
