/root/repo/target/debug/deps/pig_etl-71710f1367cd02b9.d: examples/pig_etl.rs

/root/repo/target/debug/deps/pig_etl-71710f1367cd02b9: examples/pig_etl.rs

examples/pig_etl.rs:
