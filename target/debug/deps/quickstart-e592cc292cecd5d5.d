/root/repo/target/debug/deps/quickstart-e592cc292cecd5d5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/deps/libquickstart-e592cc292cecd5d5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
