//! Whole-stack determinism: same seed → byte-identical results and
//! identical simulated schedules, across every engine.

use tez_core::{TezClient, TezConfig};
use tez_hive::{tpch, HiveEngine, HiveOpts};
use tez_pig::workloads::{event_catalog, production_scripts};
use tez_pig::{PigEngine, PigOpts};
use tez_spark::tenancy::{run_tenancy, ExecutionModel};
use tez_yarn::{ClusterSpec, CostModel};

fn cost() -> CostModel {
    // Leave stragglers ON: determinism must hold under randomness too.
    CostModel::default()
}

#[test]
fn hive_runs_are_bit_identical() {
    let run = || {
        let engine = HiveEngine::new(tpch::generate(600, 4, 7));
        let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(cost());
        let q = tpch::queries(&engine.catalog)
            .into_iter()
            .find(|(n, _)| *n == "q6")
            .unwrap()
            .1;
        let res = engine.run_tez(&client, "q6", &q.plan, &HiveOpts::default());
        (res.runtime_ms(), format!("{:?}", res.rows))
    };
    assert_eq!(run(), run());
}

#[test]
fn pig_runs_are_bit_identical() {
    let run = || {
        let engine = PigEngine::new(event_catalog(400, 4, 3));
        let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(cost());
        let (_, s) = production_scripts().remove(0);
        let res = engine.run_tez(&client, &s, &PigOpts::default());
        (res.runtime_ms(), format!("{:?}", res.outputs))
    };
    assert_eq!(run(), run());
}

#[test]
fn tenancy_runs_are_identical() {
    let spec = tez_bench::tenancy_spec(true, 50_000.0);
    let a = run_tenancy(&spec, ExecutionModel::TezBased);
    let b = run_tenancy(&spec, ExecutionModel::TezBased);
    assert_eq!(a.apps, b.apps);
}

#[test]
fn feature_flags_never_change_results() {
    // Reuse/speculation/slow-start change *when* things run, never *what*
    // they produce.
    let engine = HiveEngine::new(tpch::generate(600, 4, 7));
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(cost());
    let q = tpch::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q12")
        .unwrap()
        .1;
    let reference = format!("{:?}", {
        let mut rows = engine.reference(&q.plan);
        rows.sort_by(|a, b| tez_hive::plan::compare_rows(a, b, &[(0, false)]));
        rows
    });
    for (i, config) in [
        TezConfig::default(),
        TezConfig {
            container_reuse: false,
            speculation: false,
            ..TezConfig::default()
        },
        TezConfig {
            slowstart_min_fraction: 1.0,
            slowstart_max_fraction: 1.0,
            auto_parallelism: false,
            ..TezConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let res = engine.run_tez_with(
            &client,
            &format!("q12v{i}"),
            &q.plan,
            &HiveOpts::default(),
            config,
        );
        assert!(res.success());
        let mut rows = res.rows.clone();
        rows.sort_by(|a, b| tez_hive::plan::compare_rows(a, b, &[(0, false)]));
        assert_eq!(
            format!("{rows:?}"),
            reference,
            "variant {i} changed results"
        );
    }
}
