//! Every figure harness must reproduce the paper's qualitative claim at
//! quick scale: who wins, and in which direction the trend points.

use tez_bench::{
    ablation_features, fig10_pig_production, fig11_pig_kmeans, fig12_tenancy_traces,
    fig13_tenancy_latency, fig7_session_trace, fig8_hive_tpcds, fig9_hive_tpch,
};

#[test]
fn fig7_cross_dag_container_reuse() {
    let (gantt, reports, _) = fig7_session_trace();
    assert!(reports.iter().all(|r| r.status.is_success()));
    assert!(gantt.lines().any(|l| l.contains('A') && l.contains('B')));
    // The second DAG rides on warm containers.
    assert!(reports[1].containers_allocated <= reports[0].containers_allocated);
    assert!(reports[1].warm_starts > 0);
}

#[test]
fn fig8_tez_wins_every_tpcds_query() {
    for row in fig8_hive_tpcds(true) {
        assert!(
            row.speedup() >= 1.0,
            "{}: speedup {:.2}",
            row.name,
            row.speedup()
        );
    }
}

#[test]
fn fig9_tez_wins_every_tpch_query() {
    for row in fig9_hive_tpch(true) {
        assert!(
            row.speedup() >= 1.0,
            "{}: speedup {:.2}",
            row.name,
            row.speedup()
        );
    }
}

#[test]
fn fig10_pig_wins_on_busy_cluster() {
    let rows = fig10_pig_production(true);
    assert_eq!(rows.len(), 5, "all five production scripts ran");
    for row in &rows {
        assert!(
            row.speedup() >= 1.0,
            "{}: speedup {:.2}",
            row.name,
            row.speedup()
        );
    }
    // Paper: 1.5–2x overall; the multi-output scripts gain the most.
    let mean: f64 = rows.iter().map(|r| r.speedup()).sum::<f64>() / rows.len() as f64;
    assert!(mean >= 1.5, "mean speedup {mean:.2} below the paper's band");
}

#[test]
fn fig11_kmeans_speedup_grows() {
    let rows = fig11_pig_kmeans(true);
    assert!(rows.iter().all(|r| r.speedup() > 1.0));
    assert!(rows.last().unwrap().speedup() > rows.first().unwrap().speedup());
}

#[test]
fn fig12_tez_model_shares_capacity() {
    let (service, tez) = fig12_tenancy_traces(true);
    assert!(tez.mean_latency_ms() < service.mean_latency_ms());
    // The last-submitted tenant suffers most under the service model.
    assert!(service.latencies_ms().last().unwrap() > tez.latencies_ms().last().unwrap());
}

#[test]
fn fig13_tez_wins_at_every_scale() {
    for (label, service, tez) in fig13_tenancy_latency(true) {
        assert!(tez < service, "{label}: tez {tez} vs service {service}");
    }
}

#[test]
fn ablations_every_feature_pays_for_itself() {
    for (feature, on, off) in ablation_features(true) {
        assert!(off >= on, "{feature}: disabling helped ({off} < {on})");
    }
}
