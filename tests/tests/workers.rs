//! Worker-pool determinism and speculation accounting.
//!
//! Data-plane payloads run on a pool of OS threads (`TezConfig::workers`);
//! the worker count may only change wall-clock time. These tests pin the
//! strongest form of that contract — the serialized observability
//! artifacts (run-report JSON, Chrome trace) are byte-identical at 1, 2
//! and 4 workers — and the speculation bookkeeping that rides on the same
//! control-plane events: every scheduled attempt closes with exactly one
//! terminal timeline event, so critical-path phase tiling sums exactly to
//! the makespan even when sibling attempts are killed mid-flight.

use tez_core::{standard_registry, TezClient, TezConfig};
use tez_hive::{tpcds, tpch, HiveEngine, HiveOpts};
use tez_runtime::timeline::EventKind;
use tez_runtime::{chrome_trace, RunReport};
use tez_yarn::{ClusterSpec, CostModel};

/// Serialized artifacts of one run: run-report JSON documents (one per
/// DAG, newline-joined) plus the merged Chrome trace.
fn artifacts(reports: &[tez_core::DagReport]) -> (String, String) {
    let rr: Vec<&RunReport> = reports.iter().map(|r| &r.run_report).collect();
    let json: Vec<String> = rr.iter().map(|r| r.to_json()).collect();
    (json.join("\n"), chrome_trace(&rr))
}

fn tpch_q3_artifacts(workers: usize) -> (String, String) {
    let engine = HiveEngine::new(tpch::generate(600, 4, 7));
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8));
    let q = tpch::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q3")
        .unwrap()
        .1;
    let config = TezConfig {
        workers: Some(workers),
        ..TezConfig::default()
    };
    let res = engine.run_tez_with(&client, "q3", &q.plan, &HiveOpts::default(), config);
    assert!(res.success());
    artifacts(&res.reports)
}

#[test]
fn hive_tpch_q3_is_byte_identical_across_worker_counts() {
    let one = tpch_q3_artifacts(1);
    for workers in [2, 4] {
        let multi = tpch_q3_artifacts(workers);
        assert_eq!(
            one.0, multi.0,
            "run-report JSON diverged at {workers} workers"
        );
        assert_eq!(one.1, multi.1, "Chrome trace diverged at {workers} workers");
    }
}

/// A two-DAG pre-warmed session (the Figure 7 shape): exercises cross-DAG
/// container reuse, pre-warm payloads and stale-ticket handling at DAG
/// boundaries under the worker pool.
fn session_trace_artifacts(workers: usize) -> (String, String) {
    let engine = HiveEngine::new(tpcds::generate(1_000, 8, 7));
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q52")
        .unwrap()
        .1;
    let opts = HiveOpts {
        byte_scale: 100_000.0,
        reducers: 4,
        ..HiveOpts::default()
    };
    let config = TezConfig {
        session: true,
        prewarm_containers: 2,
        byte_scale: opts.byte_scale,
        min_split_bytes: 8 << 20,
        max_split_bytes: 64 << 20,
        workers: Some(workers),
        ..TezConfig::default()
    };
    let mut registry = standard_registry();
    let popts = tez_hive::physical::PhysicalOpts {
        reducers: opts.reducers,
        broadcast_joins: true,
        dpp: false,
    };
    let sp = tez_hive::physical::build_stages(&q.plan, &engine.catalog, &popts);
    let dags = ["dagA", "dagB"]
        .into_iter()
        .map(|name| {
            tez_hive::compile_tez::build_tez_dag(
                name,
                &sp,
                &engine.catalog,
                &mut registry,
                &format!("/results/{name}"),
                &config,
            )
        })
        .collect();
    let client = TezClient::new(ClusterSpec::homogeneous(1, 4096, 4))
        .with_cost(tez_bench::figs::bench_cost());
    let scale = opts.byte_scale;
    let run = client.run_session(dags, registry, config, |hdfs| {
        hdfs.set_stat_scale(scale);
        engine.catalog.load_hdfs(hdfs, scale);
    });
    assert_eq!(run.reports.len(), 2);
    artifacts(&run.reports)
}

#[test]
fn session_trace_is_byte_identical_across_worker_counts() {
    let one = session_trace_artifacts(1);
    for workers in [2, 4] {
        let multi = session_trace_artifacts(workers);
        assert_eq!(
            one.0, multi.0,
            "run-report JSON diverged at {workers} workers"
        );
        assert_eq!(one.1, multi.1, "Chrome trace diverged at {workers} workers");
    }
}

fn straggler_run(straggler_prob: f64, mut config: TezConfig) -> tez_hive::QueryResult {
    let cost = CostModel {
        straggler_prob,
        straggler_factor: 8.0,
        ..tez_bench::figs::bench_cost()
    };
    let engine = HiveEngine::new(tpch::generate(2_000, 8, 7));
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8)).with_cost(cost);
    let q = tpch::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q6")
        .unwrap()
        .1;
    // Declare paper-scale bytes so tasks run long enough for the
    // speculator to observe stragglers mid-flight.
    let opts = HiveOpts {
        byte_scale: 500_000.0,
        ..HiveOpts::default()
    };
    config.min_split_bytes = 8 << 20;
    config.max_split_bytes = 32 << 20;
    let res = engine.run_tez_with(&client, "q6", &q.plan, &opts, config);
    assert!(res.success());
    res
}

/// Every scheduled attempt must close with exactly one terminal
/// `AttemptFinished` event — including speculation losers killed before
/// they ever launched — and the critical path's phase attribution must
/// tile the makespan exactly.
fn assert_attempts_close(report: &RunReport) {
    let mut scheduled = 0u64;
    let mut finished = 0u64;
    for e in &report.timeline.events {
        match &e.kind {
            EventKind::AttemptScheduled { .. } => scheduled += 1,
            EventKind::AttemptFinished { .. } => finished += 1,
            _ => {}
        }
    }
    assert!(scheduled > 0);
    assert_eq!(
        scheduled, finished,
        "every scheduled attempt needs exactly one terminal event"
    );
    let cp = report.critical_path().expect("succeeded attempts");
    assert_eq!(
        cp.totals.sum(),
        cp.makespan_ms,
        "critical-path phases must tile the makespan"
    );
}

#[test]
fn forced_stragglers_with_speculation_close_every_attempt() {
    // Everything straggles: speculation arms aggressively, backups race
    // originals, losers are killed at every lifecycle stage.
    let config = TezConfig {
        speculation: true,
        speculation_min_completed: 1,
        speculation_slowdown: 1.2,
        speculation_interval_ms: 500,
        ..TezConfig::default()
    };
    let res = straggler_run(1.0, config);
    for dag in &res.reports {
        assert_attempts_close(&dag.run_report);
    }
}

#[test]
fn speculation_winners_and_losers_are_classified() {
    // A 50% straggler rate makes stragglers outliers against the vertex
    // mean, so backups reliably spawn — and, at 8x slowdown, win.
    let config = TezConfig {
        speculation: true,
        speculation_min_completed: 1,
        speculation_slowdown: 1.5,
        speculation_interval_ms: 500,
        ..TezConfig::default()
    };
    let res = straggler_run(0.5, config);
    let report = &res.reports[0].run_report;
    assert_attempts_close(report);
    let spec_spans: Vec<_> = report.attempts.iter().filter(|a| a.speculative).collect();
    assert!(
        res.reports[0].speculative_attempts > 0,
        "scenario must actually speculate"
    );
    let winners = report.speculation_winners();
    let losers = report.speculation_losers();
    assert_eq!(winners.len() + losers.len(), spec_spans.len());
    assert!(winners.iter().all(|a| a.status == "succeeded"));
    assert!(losers.iter().all(|a| a.status != "succeeded"));
    // Same-seed reruns classify identically (the flag is part of the
    // deterministic report surface).
    let res2 = straggler_run(0.5, {
        TezConfig {
            speculation: true,
            speculation_min_completed: 1,
            speculation_slowdown: 1.5,
            speculation_interval_ms: 500,
            ..TezConfig::default()
        }
    });
    assert_eq!(res2.reports[0].run_report.to_json(), report.to_json());
}
