//! Correctness under combined failures (paper §4.3): node loss, transient
//! task failures, stragglers with speculation, and an AM restart — all in
//! one run — must still produce exactly the reference answer.

use tez_core::{TezClient, TezConfig};
use tez_hive::plan::compare_rows;
use tez_hive::types::{Datum, Row};
use tez_hive::{tpcds, HiveEngine, HiveOpts};
use tez_yarn::{ClusterSpec, CostModel, FaultPlan, SimTime};

fn canon(mut rows: Vec<Row>) -> Vec<Row> {
    let width = rows.first().map(Vec::len).unwrap_or(0);
    let keys: Vec<(usize, bool)> = (0..width).map(|i| (i, false)).collect();
    rows.sort_by(|a, b| compare_rows(a, b, &keys));
    rows
}

fn rows_equal(a: &[Row], b: &[Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.iter().zip(rb).all(|(x, y)| match (x, y) {
                (Datum::F64(p), Datum::F64(q)) => {
                    (p - q).abs() <= 1e-6 * (1.0 + p.abs().max(q.abs()))
                }
                _ => x == y,
            })
        })
}

#[test]
fn hive_query_survives_chaos() {
    let engine = HiveEngine::new(tpcds::generate(800, 8, 7));
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q42")
        .unwrap()
        .1;
    let expected = canon(engine.reference(&q.plan));

    let chaos = TezClient::new(ClusterSpec::homogeneous(6, 8192, 8))
        .with_cost(CostModel {
            straggler_prob: 0.15,
            straggler_factor: 8.0,
            ..CostModel::default()
        })
        .with_fault(
            FaultPlan::none()
                .with_task_fail_prob(0.1)
                .with_node_failure(SimTime(12_000), 1)
                .with_node_failure(SimTime(30_000), 3),
        );
    let config = TezConfig {
        am_fail_at_ms: Some(20_000),
        byte_scale: 200_000.0,
        ..TezConfig::default()
    };
    let opts = HiveOpts {
        byte_scale: 200_000.0,
        ..HiveOpts::default()
    };
    let res = engine.run_tez_with(&chaos, "chaos", &q.plan, &opts, config);
    assert!(res.success(), "{:?}", res.reports);
    assert!(
        rows_equal(&expected, &canon(res.rows.clone())),
        "results must match the reference despite failures"
    );
    let r = &res.reports[0];
    let failed: usize = r.vertices.iter().map(|v| v.failed_attempts).sum();
    assert!(
        failed > 0 || r.reexecuted_tasks > 0 || r.speculative_attempts > 0,
        "the chaos plan should have exercised at least one recovery path"
    );
}

#[test]
fn lost_intermediate_data_is_regenerated() {
    // Kill a node right in the middle of the shuffle window so completed
    // map outputs vanish and reducers hit InputReadError.
    let engine = HiveEngine::new(tpcds::generate(800, 8, 7));
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q52")
        .unwrap()
        .1;
    let expected = canon(engine.reference(&q.plan));
    for fail_at in [9_000u64, 15_000, 25_000, 40_000] {
        let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8))
            .with_cost(CostModel {
                straggler_prob: 0.0,
                ..CostModel::default()
            })
            .with_fault(FaultPlan::none().with_node_failure(SimTime(fail_at), 2));
        let opts = HiveOpts {
            byte_scale: 300_000.0,
            ..HiveOpts::default()
        };
        let res = engine.run_tez(&client, &format!("loss{fail_at}"), &q.plan, &opts);
        assert!(res.success(), "fail_at={fail_at}: {:?}", res.reports);
        assert!(
            rows_equal(&expected, &canon(res.rows.clone())),
            "fail_at={fail_at}: wrong results after node loss"
        );
    }
}
