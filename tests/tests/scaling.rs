//! Cost-model sanity across the stack: more data is slower, more nodes are
//! faster, and the declared byte scale drives runtime, not the real bytes.

use tez_core::TezClient;
use tez_hive::{tpcds, HiveEngine, HiveOpts};
use tez_yarn::{ClusterSpec, CostModel};

fn run(nodes: usize, scale: f64) -> u64 {
    let engine = HiveEngine::new(tpcds::generate(800, 32, 7));
    let client = TezClient::new(ClusterSpec::homogeneous(nodes, 8192, 8)).with_cost(CostModel {
        straggler_prob: 0.0,
        ..CostModel::default()
    });
    let q = tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q42")
        .unwrap()
        .1;
    let opts = HiveOpts {
        byte_scale: scale,
        // Pruning would (correctly) shrink the scan to a couple of tasks;
        // this test needs a wide scan to expose cluster-width scaling.
        dpp: false,
        ..HiveOpts::default()
    };
    let res = engine.run_tez(&client, "scaleq", &q.plan, &opts);
    assert!(res.success());
    res.runtime_ms()
}

#[test]
fn more_declared_data_is_slower() {
    let t1 = run(4, 100_000.0);
    let t2 = run(4, 400_000.0);
    let t3 = run(4, 1_600_000.0);
    assert!(t1 < t2 && t2 < t3, "{t1} {t2} {t3}");
}

#[test]
fn more_nodes_are_faster_at_fixed_scale() {
    // 32 map splits: one 8-slot node needs 4 waves, eight nodes need 1.
    let small = run(1, 1_600_000.0);
    let big = run(8, 1_600_000.0);
    assert!(big < small, "8 nodes {big}ms vs 1 node {small}ms");
}
