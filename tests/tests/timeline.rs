//! Timeline observability (ISSUE 4): per-entity monotonic timestamps,
//! byte-identical same-seed Chrome traces, exact critical-path phase
//! accounting on a linear DAG, and shuffle-retry backoff surfacing as a
//! distinct phase instead of being lumped into compute.

use bytes::Bytes;
use tez_core::{hdfs_split_initializer, standard_registry, TezClient, TezConfig, TezRun};
use tez_dag::{DagBuilder, NamedDescriptor, UserPayload, Vertex};
use tez_runtime::timeline::EventKind;
use tez_runtime::{chrome_trace, Processor, ProcessorContext, RunReport, TaskError};
use tez_shuffle::codec::encode_kv;
use tez_shuffle::io::{kinds, scatter_gather_edge};
use tez_shuffle::Combiner;
use tez_yarn::{ClusterSpec, FaultPlan};

/// Splits lines into `(word, 1)` pairs.
struct TokenProcessor;
impl Processor for TokenProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader("in")?.into_kv()?;
        let mut words = Vec::new();
        while let Some((_, line)) = reader.next() {
            for w in String::from_utf8_lossy(&line).split_whitespace() {
                words.push(w.to_string());
            }
        }
        for w in words {
            ctx.write("mid", w.as_bytes(), &1u64.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Sums grouped counts from `src` and forwards them to `dst`.
struct SumProcessor {
    src: &'static str,
    dst: &'static str,
}
impl Processor for SumProcessor {
    fn run(&mut self, ctx: &mut ProcessorContext<'_, '_>) -> Result<(), TaskError> {
        let mut reader = ctx.reader(self.src)?.into_grouped()?;
        let mut out = Vec::new();
        while let Some(g) = reader.next_group() {
            let total: u64 = g
                .values
                .iter()
                .map(|v| u64::from_le_bytes(v[..8].try_into().unwrap()))
                .sum();
            out.push((g.key, total));
        }
        for (k, total) in out {
            ctx.write(self.dst, &k, &total.to_le_bytes())?;
        }
        Ok(())
    }
}

/// Run a linear 3-vertex DAG (tokenize → mid → final, two scatter-gather
/// hops) on a small cluster with the given fault plan.
fn run_linear(fault: FaultPlan, seed: u64) -> TezRun {
    let mut registry = standard_registry();
    registry.register_processor("TokenProcessor", |_| Box::new(TokenProcessor));
    registry.register_processor("MidProcessor", |_| {
        Box::new(SumProcessor {
            src: "tokenize",
            dst: "final",
        })
    });
    registry.register_processor("FinalProcessor", |_| {
        Box::new(SumProcessor {
            src: "mid",
            dst: "out",
        })
    });
    let dag = DagBuilder::new("linear3")
        .add_vertex(
            Vertex::new("tokenize", NamedDescriptor::new("TokenProcessor")).with_data_source(
                "in",
                NamedDescriptor::new(kinds::DFS_IN),
                Some(hdfs_split_initializer("/input/text", 1, 1 << 30, false)),
            ),
        )
        .add_vertex(Vertex::new("mid", NamedDescriptor::new("MidProcessor")).with_parallelism(1))
        .add_vertex(
            Vertex::new("final", NamedDescriptor::new("FinalProcessor"))
                .with_parallelism(1)
                .with_data_sink(
                    "out",
                    NamedDescriptor::with_payload(kinds::DFS_OUT, UserPayload::from_str("/output")),
                    Some(NamedDescriptor::new(kinds::DFS_COMMITTER)),
                ),
        )
        .add_edge("tokenize", "mid", scatter_gather_edge(Combiner::SumU64))
        .add_edge("mid", "final", scatter_gather_edge(Combiner::SumU64))
        .build()
        .expect("valid DAG");
    let client = TezClient::new(ClusterSpec::homogeneous(4, 8192, 8))
        .with_fault(fault)
        .with_seed(seed);
    client.run_dag(dag, registry, TezConfig::default(), |hdfs| {
        let lines = ["a b a", "c b a", "c c c"];
        let blocks = lines
            .iter()
            .map(|l| {
                let mut buf = Vec::new();
                encode_kv(&mut buf, b"", l.as_bytes());
                (Bytes::from(buf), 1u64)
            })
            .collect();
        hdfs.put_file("/input/text", blocks);
    })
}

fn report(run: &TezRun) -> &RunReport {
    &run.report().run_report
}

#[test]
fn linear_dag_phase_sum_equals_makespan_exactly() {
    let run = run_linear(FaultPlan::none(), 7);
    let rr = report(&run);
    assert_eq!(rr.status, "succeeded");
    let cp = rr.critical_path().expect("succeeded attempts");
    assert_eq!(cp.steps.len(), 3, "one step per vertex on a linear DAG");
    assert_eq!(
        cp.makespan_ms,
        rr.finished_ms - rr.submitted_ms,
        "critical path spans submission to finish"
    );
    assert_eq!(
        cp.totals.sum(),
        cp.makespan_ms,
        "phases must tile the makespan exactly:\n{}",
        cp.render_table()
    );
    // Per-step windows also tile their own spans.
    for s in &cp.steps {
        assert_eq!(s.phases.sum(), s.to_ms - s.from_ms, "step {}", s.vertex);
    }
}

#[test]
fn shuffle_retry_backoff_is_a_distinct_phase() {
    // Two injected transient fetch failures: the first shuffle fetch
    // retries twice with 100 + 200 ms of deterministic backoff.
    let run = run_linear(FaultPlan::none().with_transient_fetch_failures(2), 7);
    let rr = report(&run);
    assert_eq!(rr.status, "succeeded");
    let retried: Vec<_> = rr
        .timeline
        .events
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::FetchRetried {
                retries,
                backoff_ms,
                ..
            } => Some((*retries, *backoff_ms)),
            _ => None,
        })
        .collect();
    assert_eq!(retried, vec![(2, 300)], "one shard retried twice");
    let cp = rr.critical_path().expect("succeeded attempts");
    assert_eq!(
        cp.totals.backoff_ms,
        300,
        "backoff must be its own phase, not compute:\n{}",
        cp.render_table()
    );
    // The accounting stays exact even with the extra phase.
    assert_eq!(cp.totals.sum(), cp.makespan_ms);

    // Against the fault-free run, only backoff (plus the 300 ms of shifted
    // downstream time) moved; compute did not absorb the retries.
    let clean = run_linear(FaultPlan::none(), 7);
    let clean_cp = report(&clean).critical_path().unwrap();
    assert_eq!(clean_cp.totals.backoff_ms, 0);
    assert_eq!(cp.totals.processing_ms, clean_cp.totals.processing_ms);
}

#[test]
fn same_seed_runs_serialize_byte_identically() {
    let a = run_linear(FaultPlan::none(), 42);
    let b = run_linear(FaultPlan::none(), 42);
    assert_eq!(
        report(&a).to_json(),
        report(&b).to_json(),
        "run report JSON (incl. timeline + critical path) must be stable"
    );
    assert_eq!(
        chrome_trace(&[report(&a)]),
        chrome_trace(&[report(&b)]),
        "Chrome trace export must be byte-identical for the same seed"
    );
}

#[test]
fn timestamps_are_monotonic_per_entity() {
    let run = run_linear(FaultPlan::none(), 7);
    // The full simulation timeline (all apps + cluster events).
    let timeline = run.timeline();
    assert!(!timeline.is_empty());
    let mut last_seq = None;
    let mut per_entity: std::collections::BTreeMap<String, u64> = Default::default();
    for e in &timeline.events {
        if let Some(prev) = last_seq {
            assert!(e.seq > prev, "sequence numbers strictly increase");
        }
        last_seq = Some(e.seq);
        let entity = e.kind.entity();
        if let Some(&prev_ts) = per_entity.get(&entity) {
            assert!(
                e.ts_ms >= prev_ts,
                "timestamps for {entity} went backwards: {} < {prev_ts}",
                e.ts_ms
            );
        }
        per_entity.insert(entity, e.ts_ms);
    }
    // The per-DAG slice carried on the report preserves original seqs.
    let rr = report(&run);
    let seqs: Vec<u64> = rr.timeline.events.iter().map(|e| e.seq).collect();
    let mut sorted = seqs.clone();
    sorted.sort_unstable();
    assert_eq!(seqs, sorted);
}

#[test]
fn fig7_session_names_a_dominant_phase() {
    let (_, reports, _) = tez_bench::fig7_session_trace();
    assert_eq!(reports.len(), 2);
    const PHASES: [&str; 6] = [
        "scheduler_wait",
        "launch",
        "backoff",
        "fetch",
        "processing",
        "commit",
    ];
    for r in &reports {
        let cp = r.run_report.critical_path().expect("succeeded session DAG");
        let (phase, ms) = cp.dominant_phase();
        assert!(PHASES.contains(&phase), "unknown phase {phase}");
        assert!(ms > 0, "dominant phase must carry real time");
        assert_eq!(
            cp.totals.sum(),
            cp.makespan_ms,
            "exact accounting on {}",
            r.name
        );
    }
}
