//! Observability artifacts are part of the deterministic surface.
//!
//! The metrics registry (JSON + Prometheus exposition) and the ATS-style
//! history store must be byte-identical across worker counts and across
//! same-seed reruns, the histogram math must satisfy its bucket/quantile
//! invariants for arbitrary inputs, and a history query over a Figure-7
//! style session must return every vertex, attempt and container with
//! correct related-entity links.

use proptest::prelude::*;
use tez_core::{standard_registry, TezClient, TezConfig, TezRun};
use tez_runtime::metrics::{bucket_index, bucket_lower, bucket_upper, HISTOGRAM_BUCKETS};
use tez_runtime::{entity_types, metric_names, Histogram};
use tez_yarn::ClusterSpec;

/// The two-DAG pre-warmed session of Figure 7 (same shape as the
/// `workers.rs` trace test), returning the full run.
fn session_run(workers: usize) -> TezRun {
    let engine = tez_hive::HiveEngine::new(tez_hive::tpcds::generate(1_000, 8, 7));
    let q = tez_hive::tpcds::queries(&engine.catalog)
        .into_iter()
        .find(|(n, _)| *n == "q52")
        .unwrap()
        .1;
    let opts = tez_hive::HiveOpts {
        byte_scale: 100_000.0,
        reducers: 4,
        ..tez_hive::HiveOpts::default()
    };
    let config = TezConfig {
        session: true,
        prewarm_containers: 2,
        byte_scale: opts.byte_scale,
        min_split_bytes: 8 << 20,
        max_split_bytes: 64 << 20,
        workers: Some(workers),
        ..TezConfig::default()
    };
    let mut registry = standard_registry();
    let popts = tez_hive::physical::PhysicalOpts {
        reducers: opts.reducers,
        broadcast_joins: true,
        dpp: false,
    };
    let sp = tez_hive::physical::build_stages(&q.plan, &engine.catalog, &popts);
    let dags = ["dagA", "dagB"]
        .into_iter()
        .map(|name| {
            tez_hive::compile_tez::build_tez_dag(
                name,
                &sp,
                &engine.catalog,
                &mut registry,
                &format!("/results/{name}"),
                &config,
            )
        })
        .collect();
    let client = TezClient::new(ClusterSpec::homogeneous(1, 4096, 4))
        .with_cost(tez_bench::figs::bench_cost());
    let scale = opts.byte_scale;
    let run = client.run_session(dags, registry, config, |hdfs| {
        hdfs.set_stat_scale(scale);
        engine.catalog.load_hdfs(hdfs, scale);
    });
    assert_eq!(run.reports.len(), 2);
    run
}

/// (metrics JSON, history JSON, Prometheus exposition) of one run.
fn observability_artifacts(run: &TezRun) -> (String, String, String) {
    (
        run.metrics.to_json(),
        run.history().to_json(),
        run.metrics.to_prometheus(),
    )
}

#[test]
fn metrics_history_prometheus_byte_identical_across_worker_counts_and_reruns() {
    let one = observability_artifacts(&session_run(1));
    // Same-seed rerun at the same worker count.
    let again = observability_artifacts(&session_run(1));
    assert_eq!(one, again, "same-seed rerun diverged");
    for workers in [2, 4] {
        let multi = observability_artifacts(&session_run(workers));
        assert_eq!(one.0, multi.0, "metrics JSON diverged at {workers} workers");
        assert_eq!(one.1, multi.1, "history JSON diverged at {workers} workers");
        assert_eq!(
            one.2, multi.2,
            "Prometheus exposition diverged at {workers} workers"
        );
    }
}

#[test]
fn session_metrics_cover_every_declared_histogram() {
    let run = session_run(2);
    for dag in ["dagA", "dagB"] {
        let dm = run.metrics.dag(dag).expect("dag metrics");
        for name in [
            metric_names::ATTEMPT_DURATION_MS,
            metric_names::SHUFFLE_FETCH_LATENCY_MS,
        ] {
            let h = dm.scope.histograms.get(name).unwrap_or_else(|| {
                panic!("{dag}: missing histogram {name}");
            });
            assert!(!h.is_empty(), "{dag}: empty histogram {name}");
            assert!(h.p50() <= h.p95() && h.p95() <= h.p99());
        }
        // Control-plane driven pool metric is a counter, not a histogram.
        assert!(
            dm.scope.counters.get(metric_names::POOL_JOBS_SUBMITTED) > 0,
            "{dag}: no pool submissions attributed"
        );
    }
    // Queue wait is attributed per DAG: the first DAG pays for its
    // allocations; the second rides warm containers, so only the app-level
    // rollup is guaranteed to carry samples for the session.
    let a = run.metrics.dag("dagA").unwrap();
    assert!(a.scope.histograms.contains_key(metric_names::QUEUE_WAIT_MS));
    assert!(run
        .metrics
        .app
        .histograms
        .contains_key(metric_names::QUEUE_WAIT_MS));
}

/// The acceptance query: for a Figure-7 DAG the history store returns its
/// vertices, attempts and containers, all cross-linked.
#[test]
fn history_query_links_vertices_attempts_and_containers() {
    let run = session_run(1);
    let history = run.history();
    for dag in ["dagA", "dagB"] {
        let d = history.entity(entity_types::DAG, dag).expect("dag entity");
        let vertices = history
            .query()
            .entity_type(entity_types::VERTEX)
            .filter("dag", dag)
            .run();
        assert!(!vertices.is_empty(), "{dag}: no vertex entities");
        let related_vertices = d.related(entity_types::VERTEX).expect("dag→vertex links");
        for v in &vertices {
            // DAG ↔ vertex.
            assert!(related_vertices.contains(&v.entity_id));
            // Vertex → attempts, every one queryable and linked back to a
            // container the DAG also knows about.
            let attempts = v.related(entity_types::ATTEMPT).expect("vertex→attempts");
            assert!(!attempts.is_empty(), "{}: no attempts", v.entity_id);
            let mut with_container = 0usize;
            for aid in attempts {
                let a = history
                    .entity(entity_types::ATTEMPT, aid)
                    .expect("attempt entity");
                assert!(a.has_filter("dag", dag));
                // Speculative losers killed while still waiting for a
                // container legitimately never link to one.
                let Some(containers) = a.related(entity_types::CONTAINER) else {
                    assert!(
                        a.has_filter("status", "killed"),
                        "{}: only killed attempts may lack a container",
                        a.entity_id
                    );
                    continue;
                };
                with_container += 1;
                for cid in containers {
                    let c = history
                        .entity(entity_types::CONTAINER, cid)
                        .expect("container entity");
                    // Container ↔ attempt and DAG → container.
                    assert!(c
                        .related(entity_types::ATTEMPT)
                        .is_some_and(|s| s.contains(aid)));
                    assert!(d
                        .related(entity_types::CONTAINER)
                        .is_some_and(|s| s.contains(cid)));
                }
            }
            assert!(
                with_container > 0,
                "{}: no attempt ever reached a container",
                v.entity_id
            );
        }
    }
    // Windowed queries respect start-time bounds.
    let all = history.query().entity_type(entity_types::ATTEMPT).run();
    let min_start = all.iter().map(|e| e.start_time_ms).min().unwrap();
    let windowed = history
        .query()
        .entity_type(entity_types::ATTEMPT)
        .window(min_start + 1, u64::MAX)
        .run();
    assert!(windowed.len() < all.len());
}

proptest! {
    /// Every value lands in exactly the bucket whose [lower, upper] range
    /// contains it, and bucket ranges tile the u64 domain.
    #[test]
    fn histogram_buckets_cover_every_value(v in any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < HISTOGRAM_BUCKETS);
        prop_assert!(bucket_lower(i) <= v);
        prop_assert!(v <= bucket_upper(i));
        if i > 0 {
            prop_assert_eq!(bucket_upper(i - 1) + 1, bucket_lower(i));
        }
    }

    /// Quantiles are monotone in the percentile and bounded by the data's
    /// bucket range.
    #[test]
    fn histogram_quantiles_are_monotone(values in proptest::collection::vec(any::<u64>(), 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        prop_assert!(p50 <= p95 && p95 <= p99);
        let max_upper = values.iter().map(|&v| bucket_upper(bucket_index(v))).max().unwrap();
        prop_assert!(p99 <= max_upper);
    }

    /// Merging histograms equals recording the concatenated samples, and
    /// `delta_since` inverts `merge`. Values are bounded so the saturating
    /// sum stays exact — saturation intentionally loses the information
    /// `delta_since` would need.
    #[test]
    fn histogram_merge_matches_concatenation(
        a in proptest::collection::vec(0u64..(1 << 40), 0..100),
        b in proptest::collection::vec(0u64..(1 << 40), 0..100),
    ) {
        let mut ha = Histogram::new();
        for &v in &a { ha.record(v); }
        let mut hb = Histogram::new();
        for &v in &b { hb.record(v); }
        let mut merged = ha.clone();
        merged.merge(&hb);
        let mut all = Histogram::new();
        for &v in a.iter().chain(&b) { all.record(v); }
        prop_assert_eq!(merged.to_json(), all.to_json());
        prop_assert_eq!(merged.delta_since(&ha).to_json(), hb.to_json());
    }
}
