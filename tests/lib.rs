//! Cross-crate integration tests for rtez.
//!
//! The suites live in `tests/tests/`:
//! * `figure_shapes` — every paper figure's qualitative claim holds at
//!   quick scale.
//! * `fault_tolerance` — correctness under combined failures.
//! * `scaling` — cost-model monotonicity (more data → slower, more nodes
//!   → faster).
//! * `determinism` — identical seeds produce identical schedules and
//!   results across the whole stack.
