//! Minimal vendored replacement for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `bytes` API it actually uses:
//! a cheaply-clonable, immutable, reference-counted byte buffer with
//! zero-copy slicing. Semantics match the upstream crate for this subset.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable slice of contiguous memory.
///
/// Internally an `Arc<[u8]>` plus a window; `clone` and [`Bytes::slice`]
/// are O(1) and share the underlying allocation.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer (no allocation).
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// A buffer borrowing a `'static` slice (copied once into the shared
    /// allocation; upstream avoids the copy, which matters only for perf).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(data)
    }

    /// Copy `data` into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(data);
        let end = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end,
        }
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A zero-copy sub-view. Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(
            lo <= hi && hi <= self.len(),
            "slice range {lo}..{hi} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// View as a plain byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy the view out into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let arc: Arc<[u8]> = Arc::from(v);
        let end = arc.len();
        Bytes {
            data: arc,
            start: 0,
            end,
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Bytes) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Bytes) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slicing_is_zero_copy_and_bounded() {
        let b = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        let s2 = s.slice(1..);
        assert_eq!(&s2[..], &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![1u8]).slice(0..2);
    }

    #[test]
    fn ordering_and_equality_match_slices() {
        let a = Bytes::from_static(b"abc");
        let b = Bytes::from_static(b"abd");
        assert!(a < b);
        assert_eq!(a, Bytes::copy_from_slice(b"abc"));
        assert!(a == b"abc"[..]);
    }
}
