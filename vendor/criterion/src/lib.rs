//! Minimal vendored replacement for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the criterion API its micro-benchmarks
//! use: `Criterion::bench_function`, `Bencher::iter` / `iter_batched`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple — a short warm-up, then timed
//! batches until ~200 ms elapse — and reports mean ns/iteration to
//! stdout. No statistics, plots or baselines; good enough to spot
//! order-of-magnitude regressions by eye.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; this implementation runs setup once per iteration
/// regardless).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Measures one benchmark body.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    fn measure(&mut self, mut once: impl FnMut()) {
        // Warm-up.
        for _ in 0..3 {
            once();
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 1_000_000 {
            once();
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.elapsed = start.elapsed();
    }

    /// Time repeated runs of `routine`.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        self.measure(|| {
            std::hint::black_box(routine());
        });
    }

    /// Time repeated runs of `routine` over fresh inputs from `setup`;
    /// setup time is excluded from the reported per-iteration cost.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let budget = Duration::from_millis(200);
        let mut measured = Duration::ZERO;
        let start = Instant::now();
        let mut iters = 0u64;
        for _ in 0..3 {
            std::hint::black_box(routine(setup()));
        }
        while start.elapsed() < budget && iters < 1_000_000 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            measured += t0.elapsed();
            iters += 1;
        }
        self.iters_done = iters.max(1);
        self.elapsed = measured;
    }
}

/// Benchmark registry and runner.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one named benchmark and print its mean time per iteration.
    pub fn bench_function(
        &mut self,
        name: &str,
        mut body: impl FnMut(&mut Bencher),
    ) -> &mut Criterion {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        body(&mut b);
        let per_iter_ns = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        println!(
            "bench {name:<40} {per_iter_ns:>12.0} ns/iter  ({} iters)",
            b.iters_done
        );
        self
    }
}

/// Group benchmark functions under one callable name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
