//! Minimal vendored replacement for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the one type it uses: a `Mutex` whose `lock()`
//! returns the guard directly (no poisoning `Result`). Backed by
//! `std::sync::Mutex`; a poisoned lock is recovered rather than
//! propagated, matching parking_lot's no-poisoning semantics.

use std::fmt;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
