//! Minimal vendored replacement for the `rand` crate (0.9 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of `rand` it uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, `Rng::random::<f64>()`, and
//! `Rng::random_range` over integer and float ranges. The generator is
//! xoshiro256++ with a SplitMix64 seeder — deterministic for a given seed,
//! which is all the simulator requires.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// A value sampleable uniformly from the "whole type" (the subset of
/// rand's `StandardUniform` distribution the workspace uses).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample(rng: &mut dyn RngCore) -> Self;
}

impl Standard for f64 {
    fn sample(rng: &mut dyn RngCore) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample(rng: &mut dyn RngCore) -> u64 {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// A type drawable uniformly from a bounded interval. The single generic
/// [`SampleRange`] impl below is what lets integer-literal ranges unify
/// with the surrounding expression's type (as upstream rand does).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draw from `[lo, hi)`.
    fn sample_excl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
    /// Draw from `[lo, hi]`.
    fn sample_incl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self;
}

/// A range from which a value can be drawn uniformly.
pub trait SampleRange<T> {
    /// Draw one value. Panics on an empty range.
    fn sample_from(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        assert!(self.start < self.end, "empty random_range");
        T::sample_excl(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn RngCore) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty random_range");
        T::sample_incl(lo, hi, rng)
    }
}

/// Uniform draw in `[0, bound)` without modulo bias worth worrying about
/// for simulation purposes (bias < 2^-64 * bound).
fn below(rng: &mut dyn RngCore, bound: u128) -> u128 {
    debug_assert!(bound > 0);
    let wide = (rng.next_u64() as u128) << 64 | rng.next_u64() as u128;
    wide % bound
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + below(rng, span) as i128) as $t
            }
            fn sample_incl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_excl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                lo + (f64::sample(rng) as $t) * (hi - lo)
            }
            fn sample_incl(lo: Self, hi: Self, rng: &mut dyn RngCore) -> Self {
                lo + (f64::sample(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore + Sized {
    /// Sample from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[rng.random_range(0usize..10)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "bucket count {c} far from 1000");
        }
    }
}
