//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::runner::TestRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no shrinking: `generate` produces a
/// final value directly, and failures report that value via `Debug`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Equal-weight choice between several strategies of one value type.
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: fmt::Debug> Union<T> {
    /// Union over the given alternatives (must be non-empty).
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one arm"
        );
        Union(alternatives)
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Numeric ranges as strategies
// ---------------------------------------------------------------------------

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($n:ident . $idx:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

// ---------------------------------------------------------------------------
// String patterns as strategies
// ---------------------------------------------------------------------------

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_from_pattern(self, rng)
    }
}
