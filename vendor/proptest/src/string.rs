//! String generation from the literal-class pattern subset of regex that
//! the workspace's property tests use (e.g. `"[a-z]{0,12}"`).
//!
//! Supported syntax: literal characters, character classes `[a-z0-9_]`
//! (ranges and singletons, no negation), and repetition suffixes `{m}`,
//! `{m,n}`, `?`, `*`, `+` (the unbounded forms cap at 8).

use crate::runner::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed '[' in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in pattern {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "dangling escape in pattern {pattern:?}");
                let c = chars[i];
                i += 1;
                Atom::Literal(c)
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed '{{' in pattern {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("bad repetition lower bound"),
                            n.trim().parse().expect("bad repetition upper bound"),
                        ),
                        None => {
                            let exact: usize = body.trim().parse().expect("bad repetition count");
                            (exact, exact)
                        }
                    }
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(min <= max, "bad repetition bounds in pattern {pattern:?}");
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generate one string matching `pattern`.
pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let count = rng.random_range(piece.min..=piece.max);
        for _ in 0..count {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.random_range(0..set.len())]),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        for _ in 0..200 {
            let s = generate_from_pattern("[a-z]{0,12}", &mut rng);
            assert!(s.len() <= 12);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn literals_and_suffixes() {
        let mut rng = TestRng::seed_from_u64(4);
        let s = generate_from_pattern("ab[0-9]{3}", &mut rng);
        assert!(s.starts_with("ab") && s.len() == 5);
        assert!(s[2..].chars().all(|c| c.is_ascii_digit()));
        let t = generate_from_pattern("x?", &mut rng);
        assert!(t.len() <= 1);
    }
}
