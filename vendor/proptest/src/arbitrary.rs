//! `any::<T>()` — whole-type uniform generation.

use crate::runner::TestRng;
use crate::strategy::Strategy;
use rand::RngCore;
use std::fmt;
use std::marker::PhantomData;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generate one value covering the full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII (easy to read in failure reports), occasionally any
        // valid scalar value.
        if !rng.next_u64().is_multiple_of(8) {
            (0x20 + (rng.next_u64() % 0x5f)) as u8 as char
        } else {
            loop {
                if let Some(c) = char::from_u32((rng.next_u64() % 0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
