//! Collection strategies (`proptest::collection::vec`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive size window for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            min: n,
            max_incl: n,
        }
    }
}

/// Strategy returned by [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// A `Vec` of values from `element`, with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.random_range(self.size.min..=self.size.max_incl);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
