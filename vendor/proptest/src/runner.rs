//! The case runner behind the `proptest!` macro.

use crate::strategy::Strategy;
use crate::{ProptestConfig, TestCaseError};
use rand::SeedableRng;

/// The generator handed to strategies. Deterministic per (test, case).
pub type TestRng = rand::rngs::StdRng;

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Run `config.cases` generated cases of `test`, panicking on the first
/// failure with the case number and the `Debug` form of the input.
pub fn run_cases<S: Strategy>(
    config: &ProptestConfig,
    name: &str,
    strategy: &S,
    mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
) {
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(fnv1a(name) ^ (case as u64).wrapping_mul(0x9E3779B9));
        let value = strategy.generate(&mut rng);
        let shown = format!("{value:?}");
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(e)) => panic!(
                "proptest {name}: case {case}/{} failed\n  input: {shown}\n  {e}",
                config.cases
            ),
            Err(payload) => {
                eprintln!(
                    "proptest {name}: case {case}/{} panicked\n  input: {shown}",
                    config.cases
                );
                std::panic::resume_unwind(payload);
            }
        }
    }
}
