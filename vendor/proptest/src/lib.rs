//! Minimal vendored replacement for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the subset of proptest it uses: the `proptest!` macro
//! with `pat in strategy` / `ident: type` parameters, `prop_assert!` /
//! `prop_assert_eq!`, `prop_oneof!`, `any::<T>()`, numeric range and
//! string-pattern strategies, `prop_map`, `collection::vec` and
//! `option::of`.
//!
//! Differences from upstream, deliberate for this workspace:
//! * **No shrinking.** A failing case reports the generated input
//!   (`Debug`) and the case number; inputs here are small enough to read.
//! * **Deterministic.** Case `i` of test `t` derives its RNG seed from
//!   `hash(t) ⊕ i`, so failures reproduce exactly across runs.
//! * String strategies accept the literal-class pattern subset
//!   (`[a-z]{0,12}`-style), not full regex.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod runner;
pub mod strategy;
pub mod string;

pub use arbitrary::{any, Any, Arbitrary};
pub use runner::TestRng;
pub use strategy::{BoxedStrategy, Just, Map, Strategy, Union};

use std::fmt;

/// Per-`proptest!` configuration (the subset the workspace sets).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the suite fast;
    /// deterministic seeding makes reruns cover the same inputs anyway.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// A test-case failure produced by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, ProptestConfig, TestCaseError,
    };
}

/// Define property tests. Supports an optional leading
/// `#![proptest_config(expr)]` and any number of test functions whose
/// parameters are `pat in strategy` or `ident: Type` (implicit
/// `any::<Type>()`), in any mix, with optional trailing comma.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { @munch ($cfg) ($name) $body [] [] $($params)* }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    // Terminal: all parameters munched into pattern/strategy lists.
    (@munch ($cfg:expr) ($name:ident) $body:block
     [$(($p:pat))*] [$(($s:expr))*]) => {
        $crate::runner::run_cases(
            &($cfg),
            stringify!($name),
            &($($s,)*),
            |($($p,)*)| {
                $body
                ::std::result::Result::Ok(())
            },
        )
    };
    // `pat in strategy`, more parameters follow.
    (@munch ($cfg:expr) ($name:ident) $body:block
     [$($pats:tt)*] [$($strats:tt)*] $p:pat in $s:expr, $($rest:tt)+) => {
        $crate::__proptest_case! {
            @munch ($cfg) ($name) $body [$($pats)* ($p)] [$($strats)* ($s)] $($rest)+
        }
    };
    // `pat in strategy`, final parameter (optional trailing comma).
    (@munch ($cfg:expr) ($name:ident) $body:block
     [$($pats:tt)*] [$($strats:tt)*] $p:pat in $s:expr $(,)?) => {
        $crate::__proptest_case! {
            @munch ($cfg) ($name) $body [$($pats)* ($p)] [$($strats)* ($s)]
        }
    };
    // `ident: Type` (implicit any::<Type>()), more parameters follow.
    (@munch ($cfg:expr) ($name:ident) $body:block
     [$($pats:tt)*] [$($strats:tt)*] $i:ident : $t:ty, $($rest:tt)+) => {
        $crate::__proptest_case! {
            @munch ($cfg) ($name) $body
            [$($pats)* ($i)] [$($strats)* ($crate::arbitrary::any::<$t>())] $($rest)+
        }
    };
    // `ident: Type`, final parameter (optional trailing comma).
    (@munch ($cfg:expr) ($name:ident) $body:block
     [$($pats:tt)*] [$($strats:tt)*] $i:ident : $t:ty $(,)?) => {
        $crate::__proptest_case! {
            @munch ($cfg) ($name) $body
            [$($pats)* ($i)] [$($strats)* ($crate::arbitrary::any::<$t>())]
        }
    };
}

/// Assert a condition inside a `proptest!` body; failure reports the
/// generated input instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                if !(*lhs == *rhs) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                        lhs, rhs
                    )));
                }
            }
        }
    };
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {
        match (&$lhs, &$rhs) {
            (lhs, rhs) => {
                if !(*lhs == *rhs) {
                    return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                        "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n {}",
                        lhs,
                        rhs,
                        format!($($fmt)+)
                    )));
                }
            }
        }
    };
}

/// Equal-weight union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
