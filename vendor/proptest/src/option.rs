//! Option strategies (`proptest::option::of`).

use crate::runner::TestRng;
use crate::strategy::Strategy;
use rand::RngCore;

/// Strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

/// `Some` of the inner strategy three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
